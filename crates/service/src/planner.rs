//! The `Planner` seam: every way of turning a [`QueryInstance`] into a
//! served plan — cold optimization, the plan cache, a remote daemon, or
//! a whole fleet of them — sits behind one trait, so batch fronts,
//! servers, experiments, and the CLI share a single dispatch path
//! instead of re-implementing the cache-check → cold-optimize → insert
//! sequence per entry point.
//!
//! Local implementations live here ([`ColdPlanner`], [`CachedPlanner`],
//! and the fingerprint-routing [`FleetPlanner`]); the wire-speaking
//! `RemotePlanner` lives in `dsq-server` (it needs the protocol client)
//! and plugs into [`FleetPlanner`] through the same trait.

use crate::breaker::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
use crate::cache::{PlanCache, PlanTier, ServeSource, ServedPlan};
use crate::ring::HashRing;
use crate::telemetry::handles;
use dsq_core::{
    optimize_parallel, optimize_with, BnbConfig, CanonicalKey, Quantization, QueryInstance,
};
use dsq_telemetry::Stopwatch;
use parking_lot::Mutex;
use std::error::Error;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Error produced by a [`Planner`] that could not serve a request.
///
/// Local planners ([`ColdPlanner`], [`CachedPlanner`]) never fail; the
/// variants exist for remote and composite planners, and every variant
/// is a value — a planner must never panic on a malformed peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The backend's admission queue was full and the retry budget is
    /// exhausted; the hint is the server's last `retry-after-ms`.
    Busy {
        /// Backoff suggested by the backend, in milliseconds.
        retry_after_ms: u64,
    },
    /// The transport failed (connect, read, or write).
    Transport(String),
    /// The backend replied with bytes that are not a valid protocol
    /// response (malformed or truncated line, or a response that cannot
    /// carry a plan).
    Protocol(String),
    /// The backend answered with a protocol-level `error MESSAGE`.
    Backend(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Busy { retry_after_ms } => {
                write!(f, "backend busy (retry after {retry_after_ms} ms)")
            }
            PlanError::Transport(message) => write!(f, "transport error: {message}"),
            PlanError::Protocol(message) => write!(f, "protocol error: {message}"),
            PlanError::Backend(message) => write!(f, "backend error: {message}"),
        }
    }
}

impl Error for PlanError {}

/// Error from [`FleetPlanner::new`]: a fleet cannot be built over an
/// empty backend list (a zero-backend hash ring has no virtual nodes,
/// and no request could ever be served).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmptyFleetError;

impl fmt::Display for EmptyFleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a fleet needs at least one backend")
    }
}

impl Error for EmptyFleetError {}

/// Aggregate counters every [`Planner`] reports, regardless of how it
/// obtains plans. Passive struct; fields are public.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlannerStats {
    /// Requests that produced a served plan.
    pub served: u64,
    /// The subset of [`served`](Self::served) answered by a validated
    /// cache hit (local or on the remote backend).
    pub hits: u64,
    /// The subset answered by a warm-started search.
    pub warm_starts: u64,
    /// The subset answered by a cold search.
    pub cold: u64,
    /// Requests that ended in a [`PlanError`] (after any internal
    /// retries and failovers).
    pub errors: u64,
    /// Busy replies absorbed by retrying (remote planners).
    pub retries: u64,
    /// Requests re-routed to another backend after their home backend
    /// failed (fleet planners).
    pub failovers: u64,
    /// Requests served by the local fallback after every backend failed
    /// (fleet planners).
    pub fallbacks: u64,
    /// The subset of [`served`](Self::served) answered at the heuristic
    /// tier (tiered planners; `0` everywhere else).
    pub heuristic: u64,
    /// Background refinements that landed, upgrading a heuristic cache
    /// entry to its exact plan (tiered planners).
    pub refined: u64,
    /// Largest relative optimality gap observed among refined heuristic
    /// plans: `(heuristic cost − exact cost) / exact cost`.
    pub max_refined_gap: f64,
}

impl PlannerStats {
    /// Fraction of served requests answered by a cache hit; `0.0`
    /// before any request.
    pub fn hit_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.hits as f64 / self.served as f64
        }
    }

    fn record(&mut self, served: &ServedPlan) {
        self.served += 1;
        match served.source {
            ServeSource::CacheHit => self.hits += 1,
            ServeSource::WarmStart => self.warm_starts += 1,
            ServeSource::Cold => self.cold += 1,
        }
        self.heuristic += u64::from(served.tier == PlanTier::Heuristic);
    }
}

/// One way of turning an instance into a plan. See the [module
/// docs](self) for the seam this abstracts.
///
/// Implementations must be shareable across threads ([`plan_batch`]
/// drives one planner from a worker pool) and must report failures as
/// [`PlanError`] values, never panics.
pub trait Planner: Send + Sync {
    /// Short stable name for tables and logs (`cold`, `cached`,
    /// `remote(...)`, `fleet`).
    fn name(&self) -> &str;

    /// Serves one instance.
    ///
    /// # Errors
    ///
    /// [`PlanError`] when no plan could be produced; local planners are
    /// infallible and never return one.
    fn plan(&self, instance: &QueryInstance) -> Result<ServedPlan, PlanError>;

    /// A snapshot of the planner's counters.
    fn stats(&self) -> PlannerStats;

    /// Flushes or tears down whatever the planner holds open (remote
    /// connections, nothing for local planners). Serving may continue
    /// afterwards; connections re-open lazily.
    ///
    /// # Errors
    ///
    /// [`PlanError`] when a teardown step fails; the default is a no-op.
    fn drain(&self) -> Result<(), PlanError> {
        Ok(())
    }
}

impl<P: Planner + ?Sized> Planner for &P {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn plan(&self, instance: &QueryInstance) -> Result<ServedPlan, PlanError> {
        (**self).plan(instance)
    }

    fn stats(&self) -> PlannerStats {
        (**self).stats()
    }

    fn drain(&self) -> Result<(), PlanError> {
        (**self).drain()
    }
}

/// A [`Planner`] that optimizes every request from scratch — the
/// cache-off baseline, the CLI `optimize` path, and the local fallback a
/// [`FleetPlanner`] falls back on when every backend is down.
#[derive(Debug)]
pub struct ColdPlanner {
    config: BnbConfig,
    threads: NonZeroUsize,
    quantization: Quantization,
    served: AtomicU64,
}

impl ColdPlanner {
    /// A sequential cold planner with the given optimizer configuration
    /// and the default fingerprint quantization.
    pub fn new(config: BnbConfig) -> Self {
        ColdPlanner {
            config,
            threads: NonZeroUsize::new(1).expect("non-zero literal"),
            quantization: Quantization::default(),
            served: AtomicU64::new(0),
        }
    }

    /// Optimizes with `threads` workers (`optimize_parallel`) instead of
    /// sequentially.
    #[must_use]
    pub fn with_threads(mut self, threads: NonZeroUsize) -> Self {
        self.threads = threads;
        self
    }

    /// Fingerprints requests under `quantization` (only the reported
    /// [`ServedPlan::fingerprint`] changes; plans never depend on it).
    #[must_use]
    pub fn with_quantization(mut self, quantization: Quantization) -> Self {
        self.quantization = quantization;
        self
    }
}

impl Planner for ColdPlanner {
    fn name(&self) -> &str {
        "cold"
    }

    fn plan(&self, instance: &QueryInstance) -> Result<ServedPlan, PlanError> {
        let timer = Stopwatch::start();
        let result = if self.threads.get() > 1 {
            optimize_parallel(instance, &self.config, self.threads)
        } else {
            optimize_with(instance, &self.config)
        };
        timer.observe(&handles().cold_plan_ns);
        self.served.fetch_add(1, Ordering::Relaxed);
        Ok(ServedPlan {
            plan: result.plan().clone(),
            cost: result.cost(),
            source: ServeSource::Cold,
            fingerprint: CanonicalKey::new(instance, &self.quantization).fingerprint(),
            tier: PlanTier::Exact,
            optimality_gap: Some(0.0),
            search: Some(result.stats().clone()),
        })
    }

    fn stats(&self) -> PlannerStats {
        let served = self.served.load(Ordering::Relaxed);
        PlannerStats { served, cold: served, ..PlannerStats::default() }
    }
}

/// A [`Planner`] over a shared [`PlanCache`]: validated hits, warm
/// starts, and cold searches with write-back — the serving semantics of
/// [`PlanCache::serve`], behind the trait. This is what `serve-batch`,
/// the `dsq-server` worker pool, and the harness soak experiments all
/// route through.
///
/// The planner borrows the cache, so several planners (one per worker
/// thread, say) can front the same cache; counters live in the cache and
/// are therefore shared too.
#[derive(Debug)]
pub struct CachedPlanner<'a> {
    cache: &'a PlanCache,
    config: BnbConfig,
}

impl<'a> CachedPlanner<'a> {
    /// A planner serving through `cache`, optimizing (cold or warm) with
    /// `config`.
    pub fn new(cache: &'a PlanCache, config: BnbConfig) -> Self {
        CachedPlanner { cache, config }
    }

    /// The cache this planner serves through.
    pub fn cache(&self) -> &'a PlanCache {
        self.cache
    }
}

impl Planner for CachedPlanner<'_> {
    fn name(&self) -> &str {
        "cached"
    }

    fn plan(&self, instance: &QueryInstance) -> Result<ServedPlan, PlanError> {
        let timer = Stopwatch::start();
        let served = self.cache.serve(instance, &self.config);
        timer.observe(&handles().cached_plan_ns);
        Ok(served)
    }

    fn stats(&self) -> PlannerStats {
        let cache = self.cache.stats();
        PlannerStats {
            served: cache.requests(),
            hits: cache.hits,
            warm_starts: cache.warm_starts,
            cold: cache.misses,
            ..PlannerStats::default()
        }
    }
}

/// Per-backend routing counters of a [`FleetPlanner`]. Passive struct;
/// fields are public.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Requests served by each backend, indexed like the constructor's
    /// backend list.
    pub per_backend: Vec<u64>,
    /// Requests that failed on their home backend and were served by
    /// another replica.
    pub failovers: u64,
    /// Requests served by the local fallback after every backend failed.
    pub fallbacks: u64,
    /// Requests that failed everywhere (returned a [`PlanError`]).
    pub errors: u64,
}

#[derive(Debug, Default)]
struct FleetCounters {
    planner: PlannerStats,
    fleet: FleetStats,
}

/// A [`Planner`] that shards requests across N backends by canonical
/// fingerprint and fails over when a backend cannot answer.
///
/// Routing is a consistent-hash ring ([`HashRing`]): each backend
/// (identified by its [`Planner::name`] label) owns the arcs clockwise
/// before its deterministic virtual nodes, and a request lands on the
/// owner of its canonical fingerprint's ring position. Near-identical
/// queries (same fingerprint under the routing quantization) always
/// land on the same backend, so each backend's LRU cache sees a
/// **disjoint, stable keyspace** — and because the ring only remaps
/// the arcs adjacent to a membership change, a fleet resize moves only
/// ~`1/N` of the keyspace instead of reshuffling all of it the way
/// `fingerprint % N` did.
///
/// When the home backend fails (busy after its retry budget, transport
/// error, protocol garbage), the request walks the remaining replicas
/// in ring-successor order; when every backend fails it lands on the
/// local fallback planner, if one is configured. Each backend also
/// carries a [`CircuitBreaker`]: after enough consecutive failures it
/// is ejected from routing entirely (no connect attempt at all) until
/// a half-open probe succeeds — see [`crate::breaker`].
pub struct FleetPlanner<'a> {
    backends: Vec<Box<dyn Planner + 'a>>,
    fallback: Option<Box<dyn Planner + 'a>>,
    quantization: Quantization,
    ring: HashRing,
    labels: Vec<String>,
    breakers: Vec<CircuitBreaker>,
    counters: Mutex<FleetCounters>,
}

impl fmt::Debug for FleetPlanner<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetPlanner")
            .field("backends", &self.backends.len())
            .field("fallback", &self.fallback.is_some())
            .finish_non_exhaustive()
    }
}

impl<'a> FleetPlanner<'a> {
    /// A fleet over `backends`, routing by fingerprints taken under
    /// `quantization` (use the backends' cache quantization so routing
    /// and caching agree on which requests are near-identical).
    ///
    /// # Errors
    ///
    /// [`EmptyFleetError`] if `backends` is empty: a zero-backend ring
    /// has no virtual nodes, so the invalid topology is rejected at
    /// construction instead of failing on the first request.
    pub fn new(
        backends: Vec<Box<dyn Planner + 'a>>,
        quantization: Quantization,
    ) -> Result<Self, EmptyFleetError> {
        if backends.is_empty() {
            return Err(EmptyFleetError);
        }
        let labels: Vec<String> = backends.iter().map(|b| b.name().to_string()).collect();
        let per_backend = vec![0; backends.len()];
        let breakers =
            backends.iter().map(|_| CircuitBreaker::new(BreakerConfig::default())).collect();
        Ok(FleetPlanner {
            ring: HashRing::new(&labels),
            labels,
            breakers,
            backends,
            fallback: None,
            quantization,
            counters: Mutex::new(FleetCounters {
                fleet: FleetStats { per_backend, ..FleetStats::default() },
                ..FleetCounters::default()
            }),
        })
    }

    /// Adds a local fallback serving requests no backend could answer
    /// (typically a [`ColdPlanner`]).
    #[must_use]
    pub fn with_fallback(mut self, fallback: Box<dyn Planner + 'a>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Replaces every backend's circuit breaker with fresh ones under
    /// `config` (use `failure_threshold: 0` to disable health ejection).
    #[must_use]
    pub fn with_breaker(mut self, config: BreakerConfig) -> Self {
        self.breakers = self.backends.iter().map(|_| CircuitBreaker::new(config)).collect();
        self
    }

    /// Rebuilds the routing ring with `vnodes` virtual nodes per
    /// backend (the default is [`crate::ring::DEFAULT_VNODES`]).
    #[must_use]
    pub fn with_vnodes(mut self, vnodes: usize) -> Self {
        self.ring = HashRing::with_vnodes(&self.labels, vnodes);
        self
    }

    /// Replaces the ring labels (one per backend, same order as the
    /// constructor's backend list) and rebuilds the routing ring.
    ///
    /// By default a backend's ring identity is its [`Planner::name`],
    /// which for remote backends embeds the socket address — correct
    /// for a production fleet whose membership is a stable address
    /// list, but run-dependent in tests whose temp-dir socket paths
    /// change per process. Fixed labels make the keyspace split
    /// reproducible.
    ///
    /// # Panics
    ///
    /// If `labels` does not provide exactly one label per backend.
    #[must_use]
    pub fn with_ring_labels(mut self, labels: &[String]) -> Self {
        assert_eq!(
            labels.len(),
            self.backends.len(),
            "ring labels must map one-to-one onto the fleet's backends"
        );
        self.labels = labels.to_vec();
        self.ring = HashRing::new(&self.labels);
        self
    }

    /// The home backend index a request routes to: the consistent-hash
    /// owner of its canonical fingerprint (health state not applied —
    /// this is pure ring position).
    pub fn route(&self, instance: &QueryInstance) -> usize {
        let fingerprint = CanonicalKey::new(instance, &self.quantization).fingerprint();
        self.ring.route(fingerprint)
    }

    /// The consistent-hash ring requests are routed over.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Number of backends in the fleet (the fallback not included).
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// A snapshot of the routing counters.
    pub fn fleet_stats(&self) -> FleetStats {
        self.counters.lock().fleet.clone()
    }

    /// Per-backend circuit-breaker counters, indexed like the
    /// constructor's backend list.
    pub fn breaker_stats(&self) -> Vec<BreakerStats> {
        self.breakers.iter().map(CircuitBreaker::stats).collect()
    }

    /// Per-backend circuit states, indexed like the constructor's
    /// backend list.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.breakers.iter().map(CircuitBreaker::state).collect()
    }
}

impl Planner for FleetPlanner<'_> {
    fn name(&self) -> &str {
        "fleet"
    }

    fn plan(&self, instance: &QueryInstance) -> Result<ServedPlan, PlanError> {
        let timer = Stopwatch::start();
        let fingerprint = CanonicalKey::new(instance, &self.quantization).fingerprint();
        let home = self.ring.route(fingerprint);
        let mut last_error: Option<PlanError> = None;
        for backend in self.ring.successors(fingerprint) {
            // An open circuit ejects the backend from routing entirely:
            // no connect attempt, the request walks straight on to the
            // next ring successor (or admits itself as the half-open
            // probe once the cooldown has elapsed).
            if !self.breakers[backend].admit() {
                continue;
            }
            match self.backends[backend].plan(instance) {
                Ok(served) => {
                    self.breakers[backend].record(true);
                    {
                        let mut counters = self.counters.lock();
                        counters.planner.record(&served);
                        counters.planner.failovers += u64::from(backend != home);
                        counters.fleet.per_backend[backend] += 1;
                        counters.fleet.failovers += u64::from(backend != home);
                    }
                    if backend != home {
                        handles().fleet_failovers.inc();
                    }
                    timer.observe(&handles().fleet_plan_ns);
                    return Ok(served);
                }
                Err(error) => {
                    self.breakers[backend].record(false);
                    last_error = Some(error);
                }
            }
        }
        if let Some(fallback) = &self.fallback {
            match fallback.plan(instance) {
                Ok(served) => {
                    {
                        let mut counters = self.counters.lock();
                        counters.planner.record(&served);
                        counters.planner.fallbacks += 1;
                        counters.fleet.fallbacks += 1;
                    }
                    handles().fleet_fallbacks.inc();
                    timer.observe(&handles().fleet_plan_ns);
                    return Ok(served);
                }
                Err(error) => last_error = Some(error),
            }
        }
        {
            let mut counters = self.counters.lock();
            counters.planner.errors += 1;
            counters.fleet.errors += 1;
        }
        handles().fleet_errors.inc();
        // With every circuit open and no fallback, no backend was even
        // tried — still a typed error, never a panic.
        Err(last_error.unwrap_or_else(|| {
            PlanError::Backend("every backend is ejected by its circuit breaker".to_string())
        }))
    }

    fn stats(&self) -> PlannerStats {
        self.counters.lock().planner
    }

    fn drain(&self) -> Result<(), PlanError> {
        let mut first_error = None;
        for backend in self.backends.iter().chain(self.fallback.iter()) {
            if let Err(error) = backend.drain() {
                first_error.get_or_insert(error);
            }
        }
        match first_error {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }
}

/// Serves a batch of instances through any [`Planner`] across a pool of
/// worker threads, returning one result per request **in request
/// order**. The queue is a shared index into `requests`, drained until
/// empty, so an expensive request never blocks the others (no static
/// partitioning); see [`optimize_batch`](crate::optimize_batch) for the
/// determinism caveats when the planner is cache-backed.
pub fn plan_batch<P: Planner + ?Sized>(
    planner: &P,
    requests: &[QueryInstance],
    workers: NonZeroUsize,
) -> Vec<Result<ServedPlan, PlanError>> {
    if requests.is_empty() {
        return Vec::new();
    }
    let workers = workers.get().min(requests.len());
    if workers <= 1 {
        return requests.iter().map(|instance| planner.plan(instance)).collect();
    }

    // The work queue is just the next unclaimed request index; a worker
    // that pops one plans it without holding anything.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<ServedPlan, PlanError>>>> =
        (0..requests.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(instance) = requests.get(index) else { break };
                *results[index].lock() = Some(planner.plan(instance));
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every request produces exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use dsq_core::optimize;
    use dsq_workloads::{generate, Family};
    use std::sync::atomic::AtomicBool;

    fn instance(seed: u64) -> QueryInstance {
        generate(Family::Clustered, 6, seed)
    }

    #[test]
    fn cold_planner_matches_optimize_and_counts() {
        let planner = ColdPlanner::new(BnbConfig::paper());
        for seed in 0..3 {
            let inst = instance(seed);
            let served = planner.plan(&inst).expect("cold planners are infallible");
            let fresh = optimize(&inst);
            assert_eq!(served.cost.to_bits(), fresh.cost().to_bits());
            assert_eq!(&served.plan, fresh.plan());
            assert_eq!(served.source, ServeSource::Cold);
            assert!(served.search.expect("cold runs a search").proven_optimal);
        }
        let stats = planner.stats();
        assert_eq!((stats.served, stats.cold, stats.hits), (3, 3, 0));
        assert_eq!(planner.name(), "cold");
        assert!(planner.drain().is_ok());
    }

    #[test]
    fn cold_planner_parallel_plans_are_identical() {
        let inst = instance(9);
        let sequential = ColdPlanner::new(BnbConfig::paper()).plan(&inst).expect("plans");
        let parallel = ColdPlanner::new(BnbConfig::paper())
            .with_threads(NonZeroUsize::new(4).expect("non-zero"))
            .plan(&inst)
            .expect("plans");
        assert_eq!(sequential.plan, parallel.plan);
        assert_eq!(sequential.cost.to_bits(), parallel.cost.to_bits());
        assert_eq!(sequential.fingerprint, parallel.fingerprint);
    }

    #[test]
    fn cached_planner_serves_through_the_shared_cache() {
        let cache = PlanCache::new(CacheConfig::default());
        let planner = CachedPlanner::new(&cache, BnbConfig::paper());
        let inst = instance(1);
        let cold = planner.plan(&inst).expect("plans");
        assert_eq!(cold.source, ServeSource::Cold);
        let hit = planner.plan(&inst).expect("plans");
        assert_eq!(hit.source, ServeSource::CacheHit);
        assert_eq!(hit.plan, cold.plan);
        let stats = planner.stats();
        assert_eq!((stats.served, stats.hits, stats.cold), (2, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        // Counters live in the cache: a second planner over the same
        // cache sees them.
        let other = CachedPlanner::new(&cache, BnbConfig::paper());
        assert_eq!(other.stats(), stats);
    }

    /// A scripted backend for fleet tests: serves through a cold planner
    /// unless told to fail.
    struct Scripted {
        label: String,
        inner: ColdPlanner,
        down: AtomicBool,
        busy: AtomicBool,
    }

    impl Scripted {
        fn new(label: &str) -> Self {
            Scripted {
                label: label.to_string(),
                inner: ColdPlanner::new(BnbConfig::paper()),
                down: AtomicBool::new(false),
                busy: AtomicBool::new(false),
            }
        }
    }

    impl Planner for Scripted {
        fn name(&self) -> &str {
            &self.label
        }

        fn plan(&self, instance: &QueryInstance) -> Result<ServedPlan, PlanError> {
            if self.down.load(Ordering::Relaxed) {
                return Err(PlanError::Transport("scripted outage".into()));
            }
            if self.busy.load(Ordering::Relaxed) {
                return Err(PlanError::Busy { retry_after_ms: 10 });
            }
            self.inner.plan(instance)
        }

        fn stats(&self) -> PlannerStats {
            self.inner.stats()
        }
    }

    fn fleet_of<'a>(backends: &'a [Scripted]) -> FleetPlanner<'a> {
        let boxed: Vec<Box<dyn Planner + 'a>> =
            backends.iter().map(|b| Box::new(b) as Box<dyn Planner + 'a>).collect();
        FleetPlanner::new(boxed, Quantization::default()).expect("non-empty backend list")
    }

    #[test]
    fn fleet_routes_by_fingerprint_deterministically() {
        let backends = [Scripted::new("a"), Scripted::new("b")];
        let fleet = fleet_of(&backends);
        let requests: Vec<QueryInstance> = (0..12).map(instance).collect();
        let homes: Vec<usize> = requests.iter().map(|r| fleet.route(r)).collect();
        for (request, &home) in requests.iter().zip(&homes) {
            assert_eq!(fleet.route(request), home, "routing is stable");
            let served = fleet.plan(request).expect("fleet serves");
            let fresh = optimize(request);
            assert_eq!(served.cost.to_bits(), fresh.cost().to_bits());
        }
        let stats = fleet.fleet_stats();
        assert_eq!(stats.per_backend.iter().sum::<u64>(), 12);
        for (backend, &count) in stats.per_backend.iter().enumerate() {
            let expected = homes.iter().filter(|&&h| h == backend).count() as u64;
            assert_eq!(count, expected, "backend {backend} serves exactly its partition");
        }
        assert_eq!((stats.failovers, stats.fallbacks, stats.errors), (0, 0, 0));
    }

    #[test]
    fn fleet_fails_over_to_the_next_replica() {
        let backends = [Scripted::new("a"), Scripted::new("b")];
        let fleet = fleet_of(&backends);
        let request = instance(3);
        let home = fleet.route(&request);
        backends[home].down.store(true, Ordering::Relaxed);
        let served = fleet.plan(&request).expect("the other replica answers");
        assert_eq!(served.cost.to_bits(), optimize(&request).cost().to_bits());
        let stats = fleet.fleet_stats();
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.per_backend[home], 0);
        assert_eq!(stats.per_backend[1 - home], 1);
        assert_eq!(fleet.stats().failovers, 1);
    }

    #[test]
    fn fleet_falls_back_locally_when_every_backend_is_down() {
        let backends = [Scripted::new("a"), Scripted::new("b")];
        for backend in &backends {
            backend.busy.store(true, Ordering::Relaxed);
        }
        let boxed: Vec<Box<dyn Planner + '_>> =
            backends.iter().map(|b| Box::new(b) as Box<dyn Planner + '_>).collect();
        let fleet = FleetPlanner::new(boxed, Quantization::default())
            .expect("non-empty backend list")
            .with_fallback(Box::new(ColdPlanner::new(BnbConfig::paper())));
        let request = instance(5);
        let served = fleet.plan(&request).expect("local fallback answers");
        assert_eq!(served.source, ServeSource::Cold);
        assert_eq!(served.cost.to_bits(), optimize(&request).cost().to_bits());
        let stats = fleet.fleet_stats();
        assert_eq!((stats.fallbacks, stats.errors), (1, 0));
        assert_eq!(stats.per_backend, vec![0, 0]);
    }

    #[test]
    fn fleet_without_fallback_surfaces_the_last_error() {
        let backends = [Scripted::new("a"), Scripted::new("b")];
        backends[0].down.store(true, Ordering::Relaxed);
        backends[1].busy.store(true, Ordering::Relaxed);
        let fleet = fleet_of(&backends);
        let request = instance(7);
        let error = fleet.plan(&request).expect_err("everything is down");
        // The last replica tried reported busy or transport, depending
        // on routing; either way it is a typed error, not a panic.
        assert!(matches!(error, PlanError::Busy { .. } | PlanError::Transport(_)));
        let stats = fleet.fleet_stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(fleet.stats().errors, 1);
    }

    #[test]
    fn flapping_backend_is_ejected_and_readmitted() {
        use crate::breaker::{BreakerConfig, BreakerState};
        let backends = [Scripted::new("a"), Scripted::new("b")];
        let fleet = fleet_of(&backends)
            .with_breaker(BreakerConfig { failure_threshold: 2, cooldown_requests: 3 });
        // A request homed on each backend (routing is deterministic).
        let requests: Vec<QueryInstance> = (0..20).map(instance).collect();
        let homed_on = |backend: usize| {
            requests
                .iter()
                .find(|r| fleet.route(r) == backend)
                .cloned()
                .expect("20 seeds cover both partitions")
        };
        let flapper = 0usize;
        let on_flapper = homed_on(flapper);
        backends[flapper].down.store(true, Ordering::Relaxed);

        // Two failures trip the breaker; both requests still complete
        // via failover to the healthy replica.
        for _ in 0..2 {
            fleet.plan(&on_flapper).expect("failover serves");
        }
        assert_eq!(fleet.breaker_states()[flapper], BreakerState::Open);
        assert_eq!(fleet.breaker_stats()[flapper].trips, 1);

        // While ejected, homed requests go straight to the replica with
        // no attempt on the flapper (its served count stays frozen) —
        // each check ticking the cooldown. Check 3 of the cooldown
        // admits a probe, which fails (still down) and re-opens.
        let before = backends[flapper].inner.stats().served;
        for _ in 0..3 {
            fleet.plan(&on_flapper).expect("replica serves while ejected");
        }
        assert_eq!(backends[flapper].inner.stats().served, before, "no attempts while open");
        assert_eq!(fleet.breaker_stats()[flapper].trips, 2, "failed probe re-opens");

        // Backend recovers; after the cooldown the next probe succeeds
        // and the backend is readmitted to routing.
        backends[flapper].down.store(false, Ordering::Relaxed);
        for _ in 0..3 {
            fleet.plan(&on_flapper).expect("serves");
        }
        assert_eq!(fleet.breaker_states()[flapper], BreakerState::Closed);
        assert_eq!(fleet.breaker_stats()[flapper].readmissions, 1);
        let served = fleet.plan(&on_flapper).expect("readmitted home serves");
        assert_eq!(served.cost.to_bits(), optimize(&on_flapper).cost().to_bits());
        let stats = fleet.fleet_stats();
        assert!(stats.per_backend[flapper] >= 1, "home serves again after readmission");
        assert_eq!(stats.errors, 0, "every request completed despite the flapping");
    }

    #[test]
    fn all_circuits_open_yields_a_typed_error_or_fallback() {
        use crate::breaker::BreakerConfig;
        let backends = [Scripted::new("a"), Scripted::new("b")];
        for backend in &backends {
            backend.down.store(true, Ordering::Relaxed);
        }
        let fleet = fleet_of(&backends)
            .with_breaker(BreakerConfig { failure_threshold: 1, cooldown_requests: 100 });
        let request = instance(2);
        // First request trips both breakers (home fails, successor fails).
        assert!(fleet.plan(&request).is_err());
        // Now every circuit is open: no backend is tried at all, and the
        // fleet still returns a typed error.
        let error = fleet.plan(&request).expect_err("everything ejected");
        assert_eq!(
            error,
            PlanError::Backend("every backend is ejected by its circuit breaker".to_string())
        );
    }

    /// The consistent-hash property the whole PR rests on: growing the
    /// fleet by one backend leaves the surviving backends' partitions
    /// in place — only keys claimed by the joiner move.
    #[test]
    fn growing_the_fleet_keeps_surviving_partitions() {
        let two = [Scripted::new("a"), Scripted::new("b")];
        let three = [Scripted::new("a"), Scripted::new("b"), Scripted::new("c")];
        let before = fleet_of(&two);
        let after = fleet_of(&three);
        let requests: Vec<QueryInstance> = (0..24).map(instance).collect();
        let mut stayed = 0;
        for request in &requests {
            let old_home = before.route(request);
            let new_home = after.route(request);
            if new_home == 2 {
                continue; // claimed by the joiner
            }
            assert_eq!(new_home, old_home, "surviving keys never change owner");
            stayed += 1;
        }
        assert!(
            stayed * 2 >= requests.len(),
            "at least (N-1)/N of keys stay put, saw {stayed}/{}",
            requests.len()
        );
    }

    /// Regression: an empty backend list used to take down the caller
    /// with a panic (and without the guard, a zero-backend ring
    /// would have no virtual nodes to route to). It is now a typed
    /// constructor error callers can handle.
    #[test]
    fn empty_fleets_are_rejected_with_a_typed_error() {
        let error = FleetPlanner::new(Vec::new(), Quantization::default())
            .expect_err("zero backends must be rejected");
        assert_eq!(error, EmptyFleetError);
        assert_eq!(error.to_string(), "a fleet needs at least one backend");
    }

    #[test]
    fn plan_batch_preserves_request_order_for_any_planner() {
        let planner = ColdPlanner::new(BnbConfig::paper());
        let requests: Vec<QueryInstance> = (0..10).map(|s| instance(s % 4)).collect();
        let results = plan_batch(&planner, &requests, NonZeroUsize::new(4).expect("non-zero"));
        assert_eq!(results.len(), requests.len());
        for (request, result) in requests.iter().zip(results) {
            let served = result.expect("cold planners are infallible");
            assert_eq!(served.cost.to_bits(), optimize(request).cost().to_bits());
        }
        assert!(plan_batch(&planner, &[], NonZeroUsize::new(4).expect("non-zero")).is_empty());
    }

    #[test]
    fn plan_error_displays_are_stable() {
        assert_eq!(
            PlanError::Busy { retry_after_ms: 40 }.to_string(),
            "backend busy (retry after 40 ms)"
        );
        assert_eq!(PlanError::Transport("refused".into()).to_string(), "transport error: refused");
        assert_eq!(PlanError::Protocol("bad line".into()).to_string(), "protocol error: bad line");
        assert_eq!(PlanError::Backend("no".into()).to_string(), "backend error: no");
    }
}
