//! The serving layer: a sharded, concurrent plan cache plus a batched
//! optimization front-end for the decentralized service-ordering
//! optimizer.
//!
//! Real federated workloads re-optimize near-identical queries
//! constantly — the same pipeline with slowly drifting selectivity /
//! cost statistics. A single optimization is already fast; the next
//! multiplier is amortizing work *across* optimizations:
//!
//! * [`PlanCache`] — N shards keyed by the
//!   [`CanonicalKey`](dsq_core::CanonicalKey) fingerprint (quantized,
//!   sort-normalized instances share a key), per-shard `parking_lot`
//!   locks, LRU eviction, and hit / miss / warm-start / eviction
//!   statistics. A bucket-hit **validates** the cached plan's bottleneck
//!   cost against the *exact* instance before returning it; a plan that
//!   drifted out of tolerance instead **warm-starts** the
//!   branch-and-bound via
//!   [`BnbConfig::initial_incumbent`](dsq_core::BnbConfig), which prunes
//!   most of the tree while preserving exact optimality.
//! * [`Planner`] — the one trait every optimize entry point sits
//!   behind: [`ColdPlanner`] (fresh search per request),
//!   [`CachedPlanner`] (the cache semantics above), the wire-speaking
//!   `RemotePlanner` in `dsq-server`, and [`FleetPlanner`], which
//!   shards requests across N backends over a consistent-hash
//!   [`HashRing`] keyed by canonical fingerprint (each backend's LRU
//!   sees a disjoint, stable keyspace, and a resize remaps only ~1/N of
//!   it), fails over along ring successors, ejects flapping backends
//!   through per-backend [`CircuitBreaker`]s (readmitted only after a
//!   successful half-open probe), and falls back to a local planner
//!   when every backend is down. Membership is dynamic: a versioned
//!   [`FleetConfig`] file re-resolved by [`FleetMembership`] with
//!   atomic generation cutover and rollback.
//! * **Two-tier anytime planning** ([`TieredPlanner`]) — misses are
//!   answered immediately by the greedy heuristic (tier 1) and refined
//!   to proven-optimal plans on a background worker pool that upgrades
//!   the cache entry in place; [`ServedPlan::tier`] and
//!   [`ServedPlan::optimality_gap`] report what a response is worth.
//! * [`optimize_batch`] / [`plan_batch`] — drain a request queue across
//!   a worker pool sharing one planner, returning results in **request
//!   order** regardless of worker scheduling.
//! * **Multi-probe lookup** ([`CacheConfig::probes`]) — with two probes,
//!   a primary-grid miss additionally probes a half-bucket-shifted
//!   quantization grid, so a parameter walking across one bucket
//!   boundary (which flips the primary fingerprint on every crossing)
//!   keeps a single stable alias key.
//! * **Persistence** ([`PlanCache::snapshot`] / [`PlanCache::restore`])
//!   — the resident entries serialize to the versioned
//!   [`PlanSnapshot`](dsq_core::PlanSnapshot) text format (fingerprint,
//!   canonical plan, reference cost, and the representative instance
//!   text per entry), and restore re-verifies every fingerprint, so a
//!   restarted process — or a whole fleet — starts warm instead of
//!   cold. The `dsq-server` daemon builds its warm restarts on this.
//!
//! ```
//! use dsq_core::{BnbConfig, CommMatrix, QueryInstance, Service};
//! use dsq_service::{CacheConfig, PlanCache, ServeSource};
//!
//! let cache = PlanCache::new(CacheConfig::default());
//! let inst = QueryInstance::from_parts(
//!     vec![Service::new(1.0, 0.4), Service::new(0.3, 0.9)],
//!     CommMatrix::uniform(2, 0.2),
//! )?;
//! let cold = cache.serve(&inst, &BnbConfig::paper());
//! assert_eq!(cold.source, ServeSource::Cold);
//! let warm = cache.serve(&inst, &BnbConfig::paper());
//! assert_eq!(warm.source, ServeSource::CacheHit);
//! assert_eq!(warm.plan, cold.plan);
//! # Ok::<(), dsq_core::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
pub mod breaker;
mod cache;
pub mod membership;
mod planner;
pub mod ring;
mod telemetry;
mod tiered;

pub use batch::{optimize_batch, BatchOptions};
pub use breaker::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
pub use cache::{
    CacheConfig, CacheStats, PlanCache, PlanTier, RestoreError, ServeSource, ServedPlan,
};
pub use membership::{FleetConfig, FleetConfigError, FleetMembership, FLEET_CONFIG_HEADER};
pub use planner::{
    plan_batch, CachedPlanner, ColdPlanner, EmptyFleetError, FleetPlanner, FleetStats, PlanError,
    Planner, PlannerStats,
};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use tiered::{HeuristicPlanner, TieredConfig, TieredPlanner, TieredStats};
