//! Two-tier anytime planning: answer cache misses **immediately** from
//! a greedy heuristic (tier 1), refine them to proven-optimal plans on
//! a bounded background worker pool, and upgrade the cache entry in
//! place when the refinement lands (tier 2).
//!
//! A cold exact search costs hundreds of microseconds and grows with n;
//! the cubic greedy ordering from `dsq-baselines`
//! ([`fast_greedy`](dsq_baselines::fast_greedy), the best of the two
//! `O(n³)` rules — the quartic look-ahead rule is deliberately skipped
//! at this tier) costs tens of microseconds and is precedence-feasible
//! by construction. Crucially,
//! the heuristic plan is a *free incumbent* for the branch-and-bound
//! ([`BnbConfig::with_initial_incumbent`](dsq_core::BnbConfig)): the
//! background refinement starts with a near-optimal bound ρ and prunes
//! far more of the tree than the cold search the miss would otherwise
//! have paid in line. The steady state therefore converges to exactly
//! the cache a [`CachedPlanner`](crate::CachedPlanner) would have built
//! — same keys, same exact plans — while every miss was answered at
//! heuristic latency.
//!
//! Serving semantics ([`TieredPlanner::plan`]):
//!
//! * **hit on an exact entry** — identical to the cached planner:
//!   validated plan, [`PlanTier::Exact`], `optimality_gap: Some(0.0)`.
//! * **hit on a still-heuristic entry** — the plan is served as
//!   [`PlanTier::Heuristic`] with an unknown gap, and a refinement is
//!   (re-)enqueued in case the original job was dropped by the bounded
//!   queue.
//! * **miss** — the greedy plan is returned immediately at
//!   [`PlanTier::Heuristic`], written back as a heuristic-tier entry,
//!   and a refinement job (instance + incumbent) is enqueued.
//! * **stale hit (out of validation tolerance)** — the exact search
//!   runs in line, warm-started from the cached plan, exactly as in the
//!   cached planner: a stale entry proves the key is hot, so the warm
//!   start doubles as its refinement.
//!
//! [`Planner::drain`] blocks until the refinement queue is empty, which
//! makes convergence deterministic for tests, snapshots, and batch runs:
//! after `drain`, every resident entry that was served this session is
//! exact, and [`PlanCache::snapshot`] (which skips heuristic-tier
//! entries) persists the full working set.

use crate::cache::{PlanCache, PlanTier, ServeSource, ServedPlan};
use crate::planner::{PlanError, Planner, PlannerStats};
use crate::telemetry::handles;
use dsq_baselines::fast_greedy;
use dsq_core::{optimize_with, BnbConfig, CanonicalKey, Plan, Quantization, QueryInstance};
use std::collections::{HashSet, VecDeque};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A [`Planner`] that answers **every** request with the cubic greedy
/// ordering from `dsq-baselines` ([`fast_greedy`](dsq_baselines)) — no
/// cache, no search. This is tier 1 in isolation: the latency floor of
/// the tiered serve path and the baseline the optimality-gap
/// experiments measure against.
#[derive(Debug)]
pub struct HeuristicPlanner {
    quantization: Quantization,
    served: AtomicU64,
}

impl HeuristicPlanner {
    /// A heuristic planner fingerprinting under the default quantization.
    pub fn new() -> Self {
        HeuristicPlanner { quantization: Quantization::default(), served: AtomicU64::new(0) }
    }

    /// Fingerprints requests under `quantization` (only the reported
    /// [`ServedPlan::fingerprint`] changes; plans never depend on it).
    #[must_use]
    pub fn with_quantization(mut self, quantization: Quantization) -> Self {
        self.quantization = quantization;
        self
    }
}

impl Default for HeuristicPlanner {
    fn default() -> Self {
        HeuristicPlanner::new()
    }
}

impl Planner for HeuristicPlanner {
    fn name(&self) -> &str {
        "heuristic"
    }

    fn plan(&self, instance: &QueryInstance) -> Result<ServedPlan, PlanError> {
        let greedy = fast_greedy(instance);
        self.served.fetch_add(1, Ordering::Relaxed);
        Ok(ServedPlan {
            plan: greedy.plan().clone(),
            cost: greedy.cost(),
            source: ServeSource::Cold,
            fingerprint: CanonicalKey::new(instance, &self.quantization).fingerprint(),
            tier: PlanTier::Heuristic,
            optimality_gap: None,
            search: None,
        })
    }

    fn stats(&self) -> PlannerStats {
        let served = self.served.load(Ordering::Relaxed);
        PlannerStats { served, cold: served, heuristic: served, ..PlannerStats::default() }
    }
}

/// Knobs of the background refinement pool. Passive struct; fields are
/// public.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TieredConfig {
    /// Background worker threads running exact refinements.
    pub refine_workers: NonZeroUsize,
    /// Maximum queued refinement jobs; beyond it, new jobs are dropped
    /// (counted in [`TieredStats::refine_dropped`]) — a hit on the
    /// still-heuristic entry re-enqueues them once the queue drains.
    pub queue_capacity: usize,
}

impl Default for TieredConfig {
    /// One refinement worker, 256 queued jobs.
    fn default() -> Self {
        TieredConfig {
            refine_workers: NonZeroUsize::new(1).expect("non-zero literal"),
            queue_capacity: 256,
        }
    }
}

/// Counters of the tiered serve path and its refinement pool. Passive
/// struct; fields are public.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TieredStats {
    /// Requests answered at the heuristic tier (fresh misses plus hits
    /// on entries whose refinement had not landed yet).
    pub heuristic_served: u64,
    /// Refinements that completed and upgraded their cache entry.
    pub refined: u64,
    /// Refinement jobs skipped at dequeue because the entry was already
    /// exact (a warm start beat the worker to it) or had been evicted.
    pub refine_skipped: u64,
    /// Refinement jobs dropped because the bounded queue was full.
    pub refine_dropped: u64,
    /// Largest relative optimality gap among refined plans:
    /// `(heuristic cost − exact cost) / exact cost`.
    pub max_gap: f64,
    /// Sum of the relative gaps of all refined plans (divide by
    /// [`refined`](Self::refined) for the mean).
    pub gap_sum: f64,
    /// Branch-and-bound nodes visited across all refinement searches —
    /// compare against cold-search node counts to see the incumbent
    /// warm start paying off.
    pub refine_nodes: u64,
}

impl TieredStats {
    /// Mean relative gap among refined plans; `0.0` before the first
    /// refinement lands.
    pub fn mean_gap(&self) -> f64 {
        if self.refined == 0 {
            0.0
        } else {
            self.gap_sum / self.refined as f64
        }
    }
}

/// One queued refinement: the miss instance and the heuristic plan that
/// answered it (the search incumbent).
#[derive(Debug)]
struct RefineJob {
    instance: QueryInstance,
    incumbent: Plan,
    heuristic_cost: f64,
    fingerprint: u64,
}

/// Queue state and counters, all under one lock (every transition is
/// cheap; the exact searches run outside it).
#[derive(Debug, Default)]
struct RefineState {
    jobs: VecDeque<RefineJob>,
    /// Fingerprints queued **or** currently being refined — dedupes
    /// repeat misses and heuristic-tier hits on the same key.
    pending: HashSet<u64>,
    in_flight: usize,
    shutdown: bool,
    stats: TieredStats,
}

#[derive(Debug)]
struct RefineShared {
    cache: Arc<PlanCache>,
    config: BnbConfig,
    queue_capacity: usize,
    state: Mutex<RefineState>,
    /// Signaled when a job is enqueued or shutdown begins.
    work: Condvar,
    /// Signaled when the pool goes idle (queue empty, nothing in
    /// flight) — what [`Planner::drain`] waits on.
    idle: Condvar,
}

/// The two-tier anytime planner: heuristic answers on miss, bounded
/// background exact refinement, in-place cache upgrades. See the
/// [module docs](self) for the serving semantics.
#[derive(Debug)]
pub struct TieredPlanner {
    shared: Arc<RefineShared>,
    workers: Vec<JoinHandle<()>>,
}

impl TieredPlanner {
    /// A tiered planner over `cache`, refining with `config` and the
    /// default pool ([`TieredConfig::default`]).
    ///
    /// The cache is shared (`Arc`) rather than borrowed because the
    /// refinement workers are real threads that outlive any borrow the
    /// serving side could grant.
    pub fn new(cache: Arc<PlanCache>, config: BnbConfig) -> Self {
        TieredPlanner::with_config(cache, config, TieredConfig::default())
    }

    /// A tiered planner with an explicit pool configuration.
    pub fn with_config(cache: Arc<PlanCache>, config: BnbConfig, tiered: TieredConfig) -> Self {
        let shared = Arc::new(RefineShared {
            cache,
            config,
            queue_capacity: tiered.queue_capacity,
            state: Mutex::new(RefineState::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..tiered.refine_workers.get())
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || refine_loop(&shared))
            })
            .collect();
        TieredPlanner { shared, workers }
    }

    /// The cache this planner serves through and refines into.
    pub fn cache(&self) -> &PlanCache {
        &self.shared.cache
    }

    /// A snapshot of the tier counters.
    pub fn tiered_stats(&self) -> TieredStats {
        self.shared.state.lock().expect("refine state lock").stats
    }

    fn enqueue(&self, instance: &QueryInstance, served: &ServedPlan) {
        handles().tiered_heuristic_served.inc();
        let mut state = self.shared.state.lock().expect("refine state lock");
        state.stats.heuristic_served += 1;
        if state.shutdown || state.pending.contains(&served.fingerprint) {
            return;
        }
        if state.jobs.len() >= self.shared.queue_capacity {
            state.stats.refine_dropped += 1;
            return;
        }
        state.pending.insert(served.fingerprint);
        state.jobs.push_back(RefineJob {
            instance: instance.clone(),
            incumbent: served.plan.clone(),
            heuristic_cost: served.cost,
            fingerprint: served.fingerprint,
        });
        drop(state);
        self.shared.work.notify_one();
    }
}

impl Planner for TieredPlanner {
    fn name(&self) -> &str {
        "tiered"
    }

    fn plan(&self, instance: &QueryInstance) -> Result<ServedPlan, PlanError> {
        let served = self.shared.cache.serve_heuristic(instance, &self.shared.config, |inst| {
            let greedy = fast_greedy(inst);
            (greedy.plan().clone(), greedy.cost())
        });
        if served.tier == PlanTier::Heuristic {
            self.enqueue(instance, &served);
        }
        Ok(served)
    }

    fn stats(&self) -> PlannerStats {
        let cache = self.shared.cache.stats();
        let tiered = self.tiered_stats();
        PlannerStats {
            served: cache.requests(),
            hits: cache.hits,
            warm_starts: cache.warm_starts,
            cold: cache.misses,
            heuristic: tiered.heuristic_served,
            refined: tiered.refined,
            max_refined_gap: tiered.max_gap,
            ..PlannerStats::default()
        }
    }

    /// Blocks until every queued refinement has landed (queue empty and
    /// no job in flight). After `drain`, the cache holds exact plans for
    /// every key served this session that was not evicted or dropped.
    fn drain(&self) -> Result<(), PlanError> {
        let mut state = self.shared.state.lock().expect("refine state lock");
        while !state.shutdown && (!state.jobs.is_empty() || state.in_flight > 0) {
            state = self.shared.idle.wait(state).expect("refine state lock");
        }
        Ok(())
    }
}

impl Drop for TieredPlanner {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("refine state lock");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.idle.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn refine_loop(shared: &RefineShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("refine state lock");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(job) = state.jobs.pop_front() {
                    state.in_flight += 1;
                    break job;
                }
                state = shared.work.wait(state).expect("refine state lock");
            }
        };

        // Search outside the lock. Skip the work entirely when the entry
        // was upgraded (warm start) or evicted since the job was queued.
        let refined = if shared.cache.needs_refinement(job.fingerprint) {
            let config = shared.config.clone().with_initial_incumbent(job.incumbent.clone());
            let result = optimize_with(&job.instance, &config);
            shared.cache.upgrade(&job.instance, result.plan(), result.cost());
            let denom = result.cost().abs().max(f64::MIN_POSITIVE);
            let gap = ((job.heuristic_cost - result.cost()) / denom).max(0.0);
            Some((gap, result.stats().nodes_visited))
        } else {
            None
        };

        let mut state = shared.state.lock().expect("refine state lock");
        match refined {
            Some((gap, nodes)) => {
                handles().tiered_refined.inc();
                state.stats.refined += 1;
                state.stats.gap_sum += gap;
                state.stats.max_gap = state.stats.max_gap.max(gap);
                state.stats.refine_nodes += nodes;
            }
            None => state.stats.refine_skipped += 1,
        }
        state.pending.remove(&job.fingerprint);
        state.in_flight -= 1;
        if state.jobs.is_empty() && state.in_flight == 0 {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use dsq_core::optimize;
    use dsq_workloads::{generate, Family};

    fn instance(seed: u64) -> QueryInstance {
        generate(Family::Clustered, 7, seed)
    }

    fn tiered_over(capacity: usize) -> TieredPlanner {
        let cache = Arc::new(PlanCache::new(CacheConfig {
            capacity_per_shard: capacity,
            ..CacheConfig::default()
        }));
        TieredPlanner::new(cache, BnbConfig::paper())
    }

    #[test]
    fn heuristic_planner_is_feasible_and_upper_bounds_the_optimum() {
        let planner = HeuristicPlanner::new();
        for seed in 0..5 {
            let inst = instance(seed);
            let served = planner.plan(&inst).expect("heuristic planners are infallible");
            assert_eq!(served.tier, PlanTier::Heuristic);
            assert_eq!(served.optimality_gap, None);
            assert!(served.search.is_none(), "no search runs at tier 1");
            let fresh = optimize(&inst);
            assert!(
                served.cost >= fresh.cost() - 1e-12,
                "a heuristic cost can never beat the proven optimum"
            );
        }
        let stats = planner.stats();
        assert_eq!((stats.served, stats.heuristic), (5, 5));
        assert_eq!(planner.name(), "heuristic");
    }

    #[test]
    fn miss_answers_heuristic_then_refinement_upgrades_in_place() {
        let planner = tiered_over(64);
        let inst = instance(1);
        let first = planner.plan(&inst).expect("tiered planners are infallible");
        assert_eq!(first.source, ServeSource::Cold);
        assert_eq!(first.tier, PlanTier::Heuristic);
        assert_eq!(first.optimality_gap, None);

        planner.drain().expect("drain is infallible");
        let second = planner.plan(&inst).expect("plans");
        assert_eq!(second.source, ServeSource::CacheHit, "refined entry hits");
        assert_eq!(second.tier, PlanTier::Exact, "refinement upgraded the entry in place");
        assert_eq!(second.optimality_gap, Some(0.0));
        let fresh = optimize(&inst);
        assert_eq!(second.cost.to_bits(), fresh.cost().to_bits());
        assert_eq!(&second.plan, fresh.plan());

        let tiered = planner.tiered_stats();
        assert_eq!(tiered.refined, 1);
        assert_eq!(tiered.heuristic_served, 1);
        assert!(tiered.max_gap >= 0.0);
        let stats = planner.stats();
        assert_eq!((stats.served, stats.hits, stats.cold), (2, 1, 1));
        assert_eq!((stats.heuristic, stats.refined), (1, 1));
        assert_eq!(planner.cache().stats().heuristic_entries, 0, "nothing left to refine");
    }

    #[test]
    fn drain_converges_the_whole_working_set_to_exact() {
        let planner = tiered_over(64);
        let instances: Vec<QueryInstance> = (0..8).map(instance).collect();
        for inst in &instances {
            let served = planner.plan(inst).expect("plans");
            assert_eq!(served.tier, PlanTier::Heuristic);
        }
        planner.drain().expect("drain is infallible");
        assert_eq!(planner.tiered_stats().refined, 8);
        for inst in &instances {
            let served = planner.plan(inst).expect("plans");
            assert_eq!(served.source, ServeSource::CacheHit);
            assert_eq!(served.tier, PlanTier::Exact);
            assert_eq!(served.cost.to_bits(), optimize(inst).cost().to_bits());
        }
    }

    #[test]
    fn repeat_misses_on_one_key_dedupe_to_one_refinement() {
        // Queue capacity 0: every refinement is dropped, so the entry
        // stays heuristic and each hit re-attempts an enqueue.
        let cache = Arc::new(PlanCache::new(CacheConfig::default()));
        let planner = TieredPlanner::with_config(
            cache,
            BnbConfig::paper(),
            TieredConfig { queue_capacity: 0, ..TieredConfig::default() },
        );
        let inst = instance(2);
        for _ in 0..4 {
            let served = planner.plan(&inst).expect("plans");
            assert_eq!(served.tier, PlanTier::Heuristic, "dropped refinement leaves tier 1");
        }
        planner.drain().expect("drain is infallible");
        let tiered = planner.tiered_stats();
        assert_eq!(tiered.refined, 0);
        assert_eq!(tiered.refine_dropped, 4);
        assert_eq!(tiered.heuristic_served, 4);
        assert_eq!(planner.cache().stats().heuristic_entries, 1);
    }

    #[test]
    fn snapshots_skip_unrefined_entries_until_drain() {
        let instances: Vec<QueryInstance> = (0..3).map(instance).collect();

        // With refinement suppressed (queue capacity 0) every entry
        // stays heuristic, and the snapshot must not persist any of
        // them: a restored cache cannot tell the tiers apart.
        let unrefined = Arc::new(PlanCache::new(CacheConfig::default()));
        let stalled = TieredPlanner::with_config(
            Arc::clone(&unrefined),
            BnbConfig::paper(),
            TieredConfig { queue_capacity: 0, ..TieredConfig::default() },
        );
        for inst in &instances {
            stalled.plan(inst).expect("plans");
        }
        stalled.drain().expect("drain is infallible");
        assert_eq!(unrefined.stats().entries, 3, "heuristic entries are resident");
        assert_eq!(unrefined.snapshot().entries.len(), 0, "but never persisted");

        let cache = Arc::new(PlanCache::new(CacheConfig::default()));
        let planner = TieredPlanner::new(Arc::clone(&cache), BnbConfig::paper());
        for inst in &instances {
            planner.plan(inst).expect("plans");
        }
        planner.drain().expect("drain is infallible");
        // Everything refined: the snapshot persists the working set and
        // restores to exact-tier hits.
        let snapshot = cache.snapshot();
        assert_eq!(snapshot.entries.len(), 3);
        let restored = Arc::new(PlanCache::new(CacheConfig::default()));
        restored.restore(&snapshot).expect("restores");
        let warm = TieredPlanner::new(restored, BnbConfig::paper());
        for inst in &instances {
            let served = warm.plan(inst).expect("plans");
            assert_eq!(served.source, ServeSource::CacheHit);
            assert_eq!(served.tier, PlanTier::Exact, "restored entries are exact");
        }
    }
}
