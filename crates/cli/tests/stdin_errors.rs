//! Error paths that require a real process: stdin-driven commands. The
//! library tests cover everything reachable without touching the
//! process's stdin; these spawn the actual `dsq` binary.

use std::io::Write;
use std::process::{Command, Stdio};

/// Runs the built `dsq` binary with the given args and stdin, returning
/// (exit success, stdout, stderr).
fn run_binary(args: &[&str], stdin: &str) -> (bool, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dsq"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dsq");
    child.stdin.as_mut().expect("piped stdin").write_all(stdin.as_bytes()).expect("write stdin");
    let output = child.wait_with_output().expect("dsq terminates");
    (
        output.status.success(),
        String::from_utf8(output.stdout).expect("utf8 stdout"),
        String::from_utf8(output.stderr).expect("utf8 stderr"),
    )
}

fn generated_instance(n: usize, seed: u64) -> String {
    let (ok, stdout, stderr) = run_binary(
        &["generate", "--family", "hub-spoke", "-n", &n.to_string(), "--seed", &seed.to_string()],
        "",
    );
    assert!(ok, "generate failed: {stderr}");
    stdout
}

#[test]
fn optimize_of_empty_stdin_reports_the_parse_error() {
    let (ok, _, stderr) = run_binary(&["optimize", "-"], "");
    assert!(!ok);
    assert_eq!(stderr.trim(), "dsq: cannot parse -: expected header line `dsq-instance v1`");
}

#[test]
fn serve_batch_of_empty_stdin_reports_the_exact_message() {
    let (ok, _, stderr) = run_binary(&["serve-batch", "-"], "");
    assert!(!ok);
    assert_eq!(stderr.trim(), "dsq: stdin contained no instances");
    // Whitespace-only streams are equally empty.
    let (ok, _, stderr) = run_binary(&["serve-batch", "-"], "  \n\n");
    assert!(!ok);
    assert_eq!(stderr.trim(), "dsq: stdin contained no instances");
}

#[test]
fn serve_batch_reports_which_stdin_instance_is_malformed() {
    let good = generated_instance(5, 1);
    let stream = format!("{good}dsq-instance v1\nname broken\nn 2\n");
    let (ok, _, stderr) = run_binary(&["serve-batch", "-"], &stream);
    assert!(!ok);
    assert!(
        stderr.contains("cannot parse stdin instance 1:"),
        "expected indexed parse error, got: {stderr}"
    );
}

#[test]
fn serve_batch_streams_from_stdin() {
    // The same query twice plus a different one: one hit, two colds.
    let a = generated_instance(6, 7);
    let b = generated_instance(6, 8);
    let stream = format!("{a}{a}{b}");
    let (ok, stdout, stderr) = run_binary(&["serve-batch", "-", "--workers", "1"], &stream);
    assert!(ok, "serve-batch failed: {stderr}");
    assert!(stdout.contains("served 3 requests"), "{stdout}");
    assert!(stdout.contains("cache: 1 hits, 0 warm starts, 2 cold"), "{stdout}");
}

#[test]
fn optimize_over_stdin_still_works() {
    // Guard the happy path of `-` handling alongside the error paths.
    let instance = generated_instance(5, 3);
    let (ok, stdout, stderr) = run_binary(&["optimize", "-"], &instance);
    assert!(ok, "optimize over stdin failed: {stderr}");
    assert!(stdout.contains("optimal   true"), "{stdout}");
}
