//! Spawned-binary smoke of the daemon: `dsq serve` on a Unix socket
//! driven by `dsq client`, covering the hit-rate summary, snapshot
//! persistence across processes, and both graceful-shutdown paths
//! (protocol verb and stdin EOF). The same choreography runs in CI via
//! `scripts/server_smoke.sh`.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn dsq(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_dsq"))
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("spawn dsq");
    (
        output.status.success(),
        String::from_utf8(output.stdout).expect("utf8 stdout"),
        String::from_utf8(output.stderr).expect("utf8 stderr"),
    )
}

fn spawn_server(sock: &Path, snapshot: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_dsq"))
        .args([
            "serve",
            "--unix",
            sock.to_str().expect("utf8"),
            "--workers",
            "1",
            "--snapshot",
            snapshot.to_str().expect("utf8"),
        ])
        .stdin(Stdio::piped()) // held open; closing it drains the server
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dsq serve")
}

fn wait_for_socket(sock: &Path) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "server socket never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsq-smoke-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// `dsq serve < /dev/null &` — the daemonized idiom — must NOT treat the
/// immediate stdin EOF as a drain request; the `shutdown` verb stops it.
#[test]
fn serve_survives_dev_null_stdin() {
    let dir = temp_dir("devnull");
    let sock = dir.join("dsq.sock");
    let server = Command::new(env!("CARGO_BIN_EXE_dsq"))
        .args(["serve", "--unix", sock.to_str().expect("utf8"), "--workers", "1"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dsq serve");
    wait_for_socket(&sock);
    // Give a premature EOF-shutdown time to fire if the bug regresses.
    std::thread::sleep(Duration::from_millis(400));
    let sock_arg = sock.to_str().expect("utf8");
    let (ok, out, stderr) = dsq(&["client", "--unix", sock_arg, "ping"]);
    assert!(ok, "daemon must still be serving with /dev/null stdin: {stderr}");
    assert_eq!(out.trim(), "pong");
    let (ok, _, _) = dsq(&["client", "--unix", sock_arg, "shutdown"]);
    assert!(ok);
    let output = server.wait_with_output().expect("server exits on shutdown verb");
    assert!(output.status.success(), "server exit: {output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("drained cleanly"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_and_client_round_trip_with_persistence() {
    let dir = temp_dir("roundtrip");
    let sock = dir.join("dsq.sock");
    let sock_arg = sock.to_str().expect("utf8").to_string();
    let snapshot = dir.join("plans.dsqc");
    let query = dir.join("q.dsq");
    let (ok, text, stderr) = dsq(&["generate", "--family", "clustered", "-n", "7", "--seed", "11"]);
    assert!(ok, "generate failed: {stderr}");
    std::fs::write(&query, text).expect("write query");
    let query_arg = query.to_str().expect("utf8").to_string();

    // First server: cold, then a repeat hit; drained by `client shutdown`.
    let server = spawn_server(&sock, &snapshot);
    wait_for_socket(&sock);

    let (ok, out, stderr) = dsq(&["client", "--unix", &sock_arg, "ping"]);
    assert!(ok, "ping failed: {stderr}");
    assert_eq!(out.trim(), "pong");

    let (ok, out, stderr) =
        dsq(&["client", "--unix", &sock_arg, "optimize", &query_arg, "--repeat", "3"]);
    assert!(ok, "optimize failed: {stderr}");
    let sources: Vec<&str> = out.lines().filter_map(|l| l.split_whitespace().nth(1)).collect();
    assert_eq!(sources, ["cold", "hit", "hit"], "{out}");

    let (ok, out, stderr) = dsq(&["client", "--unix", &sock_arg, "stats"]);
    assert!(ok, "stats failed: {stderr}");
    assert!(out.contains("requests 3 hits 2"), "{out}");
    assert!(out.contains("hit-rate 66.7%"), "{out}");

    let (ok, out, _) = dsq(&["client", "--unix", &sock_arg, "shutdown"]);
    assert!(ok);
    assert_eq!(out.trim(), "server draining");

    let output = server.wait_with_output().expect("server exits");
    assert!(output.status.success(), "server exit: {output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("listening on unix://"), "{stdout}");
    assert!(stdout.contains("served 3 requests"), "{stdout}");
    assert!(stdout.contains("hit-rate"), "{stdout}");
    assert!(stdout.contains("drained cleanly"), "{stdout}");
    assert!(snapshot.exists(), "final snapshot written");
    assert!(!sock.exists(), "socket unlinked");

    // Second server: warm restart from the snapshot; drained by stdin
    // EOF this time.
    let mut server = spawn_server(&sock, &snapshot);
    wait_for_socket(&sock);
    let (ok, out, stderr) = dsq(&["client", "--unix", &sock_arg, "optimize", &query_arg]);
    assert!(ok, "warm optimize failed: {stderr}");
    assert!(
        out.split_whitespace().nth(1) == Some("hit"),
        "restarted server must answer warm: {out}"
    );
    // Close stdin: EOF is the other graceful-shutdown path.
    let mut stdin = server.stdin.take().expect("piped stdin");
    stdin.flush().ok();
    drop(stdin);
    let output = server.wait_with_output().expect("server exits on stdin EOF");
    assert!(output.status.success(), "server exit: {output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("restored 1 cached plans from snapshot"), "{stdout}");
    assert!(stdout.contains("drained cleanly"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}
