//! Implementation of the `dsq` command-line tool.
//!
//! The binary (`src/bin/dsq.rs`) is a thin shim over [`run`], so the
//! whole command surface is unit-testable without spawning processes.
//!
//! ```text
//! dsq generate --family clustered -n 12 --seed 3       # instance → stdout
//! dsq optimize pipeline.dsq [--parallel 4] [--config extended]
//! dsq explain pipeline.dsq --plan 2,0,1                # per-term breakdown
//! dsq baselines pipeline.dsq                           # comparison table
//! dsq simulate pipeline.dsq --tuples 20000 [--plan …]  # discrete-event run
//! dsq serve-batch queries/ [--workers 4]               # plan-cache batch serve
//! dsq serve --unix /tmp/dsq.sock [--snapshot s.dsqc]   # long-lived daemon
//! dsq client --unix /tmp/dsq.sock optimize a.dsq       # drive the daemon
//! dsq client --fleet unix:///tmp/a.sock,unix:///tmp/b.sock optimize a.dsq
//! ```
//!
//! Every serving path — one-shot `optimize`, `serve-batch` (local cache
//! or `--remote` fleet), the daemon's workers, and `client --fleet` —
//! routes through the `dsq_service::Planner` trait, so they share one
//! dispatch implementation.

#![warn(missing_docs)]

use dsq_baselines::{
    beam_search, best_greedy, local_search, random_sampling, simulated_annealing,
    uniform_reference_plan, AnnealingConfig, BeamConfig, LocalSearchConfig,
};
use dsq_core::{
    bottleneck_cost, explain, format_instance, parse_instance, BnbConfig, Plan, PlanSnapshot,
    Quantization, QueryInstance,
};
use dsq_server::{
    hold_connections, Client, ExportRequest, FaultProfile, ListenAddr, LoadgenConfig,
    PipelineRequest, RemotePlanner, RequestClass, Response, Server, ServerConfig, SnapshotLock,
};
use dsq_service::{
    plan_batch, CacheConfig, CachedPlanner, ColdPlanner, FleetConfig, FleetMembership,
    FleetPlanner, HashRing, PlanCache, PlanTier, Planner, ServedPlan, TieredPlanner,
    DEFAULT_VNODES,
};
use dsq_simulator::{simulate, SimConfig};
use dsq_workloads::{generate, Family};
use std::io::Read;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Error produced by a CLI run: the message printed to stderr.
pub type CliError = String;

/// Executes the CLI with the given arguments (excluding the program
/// name), writing to `out`. Returns `Err(message)` for usage and input
/// errors.
///
/// # Examples
///
/// ```
/// let mut out = Vec::new();
/// dsq_cli::run(&["generate".into(), "--family".into(), "clustered".into(),
///                "-n".into(), "4".into()], &mut out).unwrap();
/// assert!(String::from_utf8(out).unwrap().starts_with("dsq-instance v1"));
/// ```
pub fn run(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let mut args = args.iter().map(String::as_str);
    match args.next() {
        Some("generate") => generate_cmd(&mut args, out),
        Some("optimize") => optimize_cmd(&mut args, out),
        Some("explain") => explain_cmd(&mut args, out),
        Some("baselines") => baselines_cmd(&mut args, out),
        Some("simulate") => simulate_cmd(&mut args, out),
        Some("serve-batch") => serve_batch_cmd(&mut args, out),
        Some("serve") => serve_cmd(&mut args, out),
        Some("client") => client_cmd(&mut args, out),
        Some("loadgen") => loadgen_cmd(&mut args, out),
        Some("fleet") => fleet_cmd(&mut args, out),
        Some("--help") | Some("-h") | None => {
            writeln!(out, "{USAGE}").map_err(io_err)?;
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

const USAGE: &str = "usage:
  dsq generate --family FAMILY -n N [--seed S]        write an instance to stdout
  dsq optimize FILE [--config NAME] [--parallel T]    find the optimal ordering
  dsq explain FILE --plan I,J,K,...                   break down a plan's cost
  dsq baselines FILE                                  compare all ordering methods
  dsq simulate FILE [--plan I,J,...] [--tuples N] [--block B]
  dsq serve-batch DIR|-  [--workers T] [--config NAME] [--shards S]
                         [--capacity C] [--resolution R] [--tolerance X]
                         [--probes P] [--snapshot-in FILE] [--snapshot-out FILE]
                         [--tiered]                   two-tier anytime serving
                         [--remote ADDRS]             serve through remote daemons
  dsq serve  --unix PATH | --tcp ADDR                 long-lived plan-serving daemon
             [--workers T] [--config NAME] [--shards S] [--capacity C]
             [--resolution R] [--tolerance X] [--probes P] [--queue Q]
             [--retry-ms N] [--snapshot FILE] [--snapshot-interval-secs S]
             [--tiered] [--chaos SEED] [--max-pipeline D]
  dsq client --unix PATH | --tcp ADDR | --fleet ADDRS | --fleet-config FILE
             [--resolution R]  COMMAND
             COMMAND = optimize FILE... [--repeat N] [--pipeline]
                     | stats | metrics | ping | shutdown | hold N
  dsq loadgen --unix PATH | --tcp ADDR               open-loop load generator
              [--rate R] [--requests N] [-n SERVICES] [--seed S]
              [--classes drift,boundary,pipelined] [--pipeline-depth D]
              [--json]
  dsq fleet rebalance --from ADDRS --to ADDRS [--vnodes V]
families: uniform-random euclidean clustered hub-spoke correlated proliferative btsp-hard
configs:  paper incumbent-only no-epsilon-bar no-backjump extended
FILE may be `-` for stdin; serve-batch reads every *.dsq in DIR (sorted) or a
concatenated instance stream from stdin and serves it through the plan cache;
serve drains gracefully on stdin EOF (tty/pipe stdin; ignored for /dev/null)
or a client `shutdown` request; ADDRS is a comma-separated backend list
(unix://PATH or tcp://HOST:PORT) — --fleet/--remote shard requests across the
backends over a consistent-hash ring, fail over between replicas, and fall
back to a local cold optimization when every backend is busy or down;
--fleet-config reads the backend list from a versioned fleet-config file
instead and re-resolves it between repeat rounds, cutting over atomically
when the generation grows; fleet rebalance tells every --from backend the new
--to layout and moves the warm cache partitions onto their inheriting
backends; --chaos injects deterministic response-path faults (drop, delay,
truncate) for resilience testing; client optimize --pipeline sends every
document as one coalesced frame and reads the responses back in request
order (the server admits up to its --max-pipeline per connection); client
hold N parks N concurrent idle connections on the server's reactor and
prints a held/dropped accounting line on drain; client metrics dumps the
server's telemetry registry in the `# dsq-metrics v1` exposition format;
loadgen drives open-loop (Poisson-arrival) traffic per request class —
latency is measured from each request's *scheduled* send time, so a slow
server cannot hide tail latency by slowing the generator down — and prints
per-class p50/p99/p999 with a hit/warm/cold/busy breakdown (--json emits
the dsq-loadgen/v1 document bench_snapshot.sh folds into BENCH); --tiered
answers cache misses immediately with a greedy plan (`tier heur` on output)
and refines them to exact in the background, upgrading the cache in place";

fn io_err(e: std::io::Error) -> CliError {
    format!("I/O error: {e}")
}

fn load_instance(path: &str) -> Result<QueryInstance, CliError> {
    let text = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin().read_to_string(&mut buffer).map_err(io_err)?;
        buffer
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    parse_instance(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn parse_family(name: &str) -> Result<Family, CliError> {
    Family::ALL
        .into_iter()
        .find(|f| f.name() == name)
        .ok_or_else(|| format!("unknown family `{name}`"))
}

fn parse_config(name: &str) -> Result<BnbConfig, CliError> {
    match name {
        "paper" => Ok(BnbConfig::paper()),
        "incumbent-only" => Ok(BnbConfig::incumbent_only()),
        "no-epsilon-bar" => Ok(BnbConfig::without_epsilon_bar()),
        "no-backjump" => Ok(BnbConfig::without_backjump()),
        "extended" => Ok(BnbConfig::extended()),
        other => Err(format!("unknown config `{other}`")),
    }
}

fn parse_plan_arg(spec: &str, n: usize) -> Result<Plan, CliError> {
    let order: Vec<usize> = spec
        .split(',')
        .map(|f| f.trim().parse::<usize>().map_err(|_| format!("bad plan index `{f}`")))
        .collect::<Result<_, _>>()?;
    if order.len() != n {
        return Err(format!("plan has {} services, instance has {n}", order.len()));
    }
    // ModelError::InvalidPlan already reads "invalid plan: …".
    Plan::new(order).map_err(|e| e.to_string())
}

fn generate_cmd<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let mut family = None;
    let mut n = None;
    let mut seed = 0u64;
    while let Some(arg) = args.next() {
        match arg {
            "--family" => {
                family = Some(parse_family(args.next().ok_or("--family needs a value")?)?)
            }
            "-n" | "--services" => {
                n = Some(
                    args.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&v| v > 0)
                        .ok_or("-n needs a positive integer")?,
                )
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).ok_or("--seed needs an integer")?
            }
            other => return Err(format!("unknown generate flag `{other}`")),
        }
    }
    let family = family.ok_or("generate requires --family")?;
    let n = n.ok_or("generate requires -n")?;
    write!(out, "{}", format_instance(&generate(family, n, seed))).map_err(io_err)
}

fn optimize_cmd<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let mut file = None;
    let mut config = BnbConfig::paper();
    let mut threads = 1usize;
    while let Some(arg) = args.next() {
        match arg {
            "--config" => config = parse_config(args.next().ok_or("--config needs a value")?)?,
            "--parallel" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .ok_or("--parallel needs a positive integer")?
            }
            other if file.is_none() => file = Some(other),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let instance = load_instance(file.ok_or("optimize requires an instance file")?)?;
    // Even the one-shot CLI path goes through the Planner seam: the same
    // entry point `serve-batch --remote`'s fallback and the fleet router
    // use.
    let planner =
        ColdPlanner::new(config).with_threads(NonZeroUsize::new(threads).expect("checked > 0"));
    let served = planner.plan(&instance).map_err(|e| e.to_string())?;
    let stats = served.search.as_ref().expect("cold planners always run a search");
    writeln!(out, "plan      {}", served.plan).map_err(io_err)?;
    writeln!(out, "cost      {:.6}", served.cost).map_err(io_err)?;
    writeln!(out, "optimal   {}", stats.proven_optimal).map_err(io_err)?;
    writeln!(out, "{stats}").map_err(io_err)
}

fn explain_cmd<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let mut file = None;
    let mut plan_spec = None;
    while let Some(arg) = args.next() {
        match arg {
            "--plan" => plan_spec = Some(args.next().ok_or("--plan needs a value")?),
            other if file.is_none() => file = Some(other),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let instance = load_instance(file.ok_or("explain requires an instance file")?)?;
    let plan = match plan_spec {
        Some(spec) => parse_plan_arg(spec, instance.len())?,
        None => dsq_core::optimize(&instance).into_plan(),
    };
    write!(out, "{}", explain(&instance, &plan)).map_err(io_err)
}

fn baselines_cmd<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let file = args.next().ok_or("baselines requires an instance file")?;
    if let Some(extra) = args.next() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    let instance = load_instance(file)?;
    let optimal = dsq_core::optimize(&instance);
    writeln!(out, "{:<22} {:>12} {:>8}", "method", "cost", "ratio").map_err(io_err)?;
    let mut emit = |name: &str, cost: f64| -> Result<(), CliError> {
        writeln!(out, "{name:<22} {cost:>12.6} {:>7.3}×", cost / optimal.cost()).map_err(io_err)
    };
    emit("branch-and-bound", optimal.cost())?;
    if let Ok((plan, _)) = uniform_reference_plan(&instance) {
        emit("uniform-opt [VLDB'06]", bottleneck_cost(&instance, &plan))?;
    }
    emit("greedy (best rule)", best_greedy(&instance).cost())?;
    emit("beam (width 16)", beam_search(&instance, &BeamConfig::default()).cost())?;
    emit("local search", local_search(&instance, &LocalSearchConfig::default()).cost())?;
    emit(
        "annealing (10k steps)",
        simulated_annealing(&instance, &AnnealingConfig { steps: 10_000, ..Default::default() })
            .cost(),
    )?;
    let sample = random_sampling(&instance, 100, 0);
    emit("random best-of-100", sample.cost())?;
    emit("random mean", sample.mean_cost())
}

fn simulate_cmd<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let mut file = None;
    let mut plan_spec = None;
    let mut tuples = 10_000u64;
    let mut block = 32u64;
    while let Some(arg) = args.next() {
        match arg {
            "--plan" => plan_spec = Some(args.next().ok_or("--plan needs a value")?),
            "--tuples" => {
                tuples = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .ok_or("--tuples needs a positive integer")?
            }
            "--block" => {
                block = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .ok_or("--block needs a positive integer")?
            }
            other if file.is_none() => file = Some(other),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let instance = load_instance(file.ok_or("simulate requires an instance file")?)?;
    let plan = match plan_spec {
        Some(spec) => parse_plan_arg(spec, instance.len())?,
        None => dsq_core::optimize(&instance).into_plan(),
    };
    let report = simulate(
        &instance,
        &plan,
        &SimConfig { tuples, block_size: block, ..SimConfig::default() },
    );
    let predicted = bottleneck_cost(&instance, &plan);
    writeln!(out, "plan                {plan}").map_err(io_err)?;
    writeln!(out, "predicted cost      {predicted:.6}").map_err(io_err)?;
    writeln!(out, "predicted tput      {:.4}", 1.0 / predicted).map_err(io_err)?;
    writeln!(out, "{report}").map_err(io_err)
}

/// Splits a concatenated stream of instances (each starting with the
/// `dsq-instance v1` header line) into individual documents.
fn split_instance_stream(text: &str) -> Vec<String> {
    let mut documents: Vec<String> = Vec::new();
    for line in text.lines() {
        if line.trim_start().starts_with("dsq-instance") {
            documents.push(String::new());
        }
        if let Some(current) = documents.last_mut() {
            current.push_str(line);
            current.push('\n');
        }
        // Content before the first header is unparseable noise; it is
        // reported by the per-document parse below only if no header
        // ever arrives (empty-stream error), matching `optimize -`.
    }
    documents
}

/// Parses one of the cache flags shared by `serve-batch` and `serve`
/// (`--shards`, `--capacity`, `--resolution`, `--tolerance`,
/// `--probes`); `Ok(false)` when `arg` is none of them (nothing
/// consumed).
fn parse_cache_flag<'a, I: Iterator<Item = &'a str>>(
    arg: &str,
    args: &mut I,
    cache: &mut CacheConfig,
) -> Result<bool, CliError> {
    match arg {
        "--shards" => {
            cache.shards = args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&v| v > 0)
                .ok_or("--shards needs a positive integer")?
        }
        "--capacity" => {
            cache.capacity_per_shard = args
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or("--capacity needs a non-negative integer")?
        }
        "--resolution" => {
            let value: f64 = args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|v| (0.0..1.0).contains(v) && *v > 0.0)
                .ok_or("--resolution needs a number in (0, 1)")?;
            cache.quantization = Quantization::new(value);
        }
        "--tolerance" => {
            cache.validation_tolerance = args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|v: &f64| v.is_finite() && *v >= 0.0)
                .ok_or("--tolerance needs a non-negative number")?
        }
        "--probes" => {
            cache.probes = args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&v| v == 1 || v == 2)
                .ok_or("--probes must be 1 or 2")?
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Parses a comma-separated fleet backend list. Each entry is
/// `unix://PATH`, `tcp://ADDR`, a bare path (contains `/` → Unix
/// socket), or a bare `host:port` (→ TCP). Duplicate endpoints are
/// rejected (compared after normalization, so `/tmp/a.sock` and
/// `unix:///tmp/a.sock` collide): a repeated address would occupy two
/// ring slots and silently double its share of the keyspace.
fn parse_fleet_spec(spec: &str) -> Result<Vec<ListenAddr>, CliError> {
    let mut addrs = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            return Err(format!("empty backend address in `{spec}`"));
        }
        let addr = if let Some(path) = entry.strip_prefix("unix://") {
            ListenAddr::Unix(PathBuf::from(path))
        } else if let Some(addr) = entry.strip_prefix("tcp://") {
            ListenAddr::Tcp(addr.to_string())
        } else if entry.contains('/') {
            ListenAddr::Unix(PathBuf::from(entry))
        } else {
            ListenAddr::Tcp(entry.to_string())
        };
        if addrs.contains(&addr) {
            return Err(format!("duplicate backend address `{entry}` in `{spec}`"));
        }
        addrs.push(addr);
    }
    Ok(addrs)
}

/// Resolves one fleet-config generation's endpoints to listen
/// addresses, under the same per-entry grammar (and duplicate
/// rejection) as `--fleet`.
fn fleet_config_addrs(config: &FleetConfig) -> Result<Vec<ListenAddr>, CliError> {
    parse_fleet_spec(&config.endpoints.join(","))
}

/// The fleet router `--remote` / `--fleet` serve through: one
/// `RemotePlanner` per backend (busy retry/backoff built in), requests
/// sharded by canonical fingerprint, failover to the next replica, and
/// a local cold-optimize fallback so the stream completes even with
/// every backend down.
fn build_fleet(
    addrs: &[ListenAddr],
    quantization: Quantization,
    config: BnbConfig,
) -> Result<FleetPlanner<'static>, CliError> {
    let backends: Vec<Box<dyn Planner>> = addrs
        .iter()
        .map(|addr| Box::new(RemotePlanner::new(addr.clone())) as Box<dyn Planner>)
        .collect();
    let fleet = FleetPlanner::new(backends, quantization).map_err(|e| e.to_string())?;
    Ok(fleet.with_fallback(Box::new(ColdPlanner::new(config))))
}

/// One fleet summary line: per-backend request counts plus the failover
/// and local-fallback tallies.
fn write_fleet_summary(
    out: &mut dyn std::io::Write,
    fleet: &FleetPlanner<'_>,
) -> Result<(), CliError> {
    let stats = fleet.fleet_stats();
    let per_backend = stats.per_backend.iter().map(u64::to_string).collect::<Vec<_>>().join("/");
    writeln!(
        out,
        "fleet: {} backends served {} requests ({per_backend}), {} failovers, {} local fallbacks",
        stats.per_backend.len(),
        stats.per_backend.iter().sum::<u64>(),
        stats.failovers,
        stats.fallbacks,
    )
    .map_err(io_err)
}

/// Parses `--unix PATH` / `--tcp ADDR`; `Ok(None)` when `arg` is
/// neither.
fn parse_addr_flag<'a, I: Iterator<Item = &'a str>>(
    arg: &str,
    args: &mut I,
) -> Result<Option<ListenAddr>, CliError> {
    match arg {
        "--unix" => {
            Ok(Some(ListenAddr::Unix(PathBuf::from(args.next().ok_or("--unix needs a path")?))))
        }
        "--tcp" => {
            Ok(Some(ListenAddr::Tcp(args.next().ok_or("--tcp needs an address")?.to_string())))
        }
        _ => Ok(None),
    }
}

fn serve_batch_cmd<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let mut path: Option<&str> = None;
    let mut workers = 4usize;
    let mut config = BnbConfig::paper();
    let mut cache_config = CacheConfig::default();
    let mut snapshot_in: Option<&str> = None;
    let mut snapshot_out: Option<&str> = None;
    let mut remote: Option<&str> = None;
    let mut tiered = false;
    while let Some(arg) = args.next() {
        if parse_cache_flag(arg, args, &mut cache_config)? {
            continue;
        }
        match arg {
            "--tiered" => tiered = true,
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .ok_or("--workers needs a positive integer")?
            }
            "--config" => config = parse_config(args.next().ok_or("--config needs a value")?)?,
            "--snapshot-in" => snapshot_in = Some(args.next().ok_or("--snapshot-in needs a file")?),
            "--snapshot-out" => {
                snapshot_out = Some(args.next().ok_or("--snapshot-out needs a file")?)
            }
            "--remote" => {
                remote = Some(args.next().ok_or("--remote needs a comma-separated address list")?)
            }
            other if path.is_none() => path = Some(other),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let path = path.ok_or("serve-batch requires a directory or `-` for stdin")?;
    if remote.is_some() && (snapshot_in.is_some() || snapshot_out.is_some()) {
        return Err("--remote backends own their caches; drop --snapshot-in/--snapshot-out".into());
    }
    if remote.is_some() && tiered {
        return Err("--remote backends choose their own serving mode; drop --tiered".into());
    }

    // Gather the request stream: every *.dsq under a directory (sorted
    // for deterministic request order) or a concatenated stdin stream.
    // Names and instances are parallel vectors so the batch API gets
    // one contiguous slice without re-cloning every instance.
    let mut names: Vec<String> = Vec::new();
    let mut instances: Vec<QueryInstance> = Vec::new();
    if path == "-" {
        let mut buffer = String::new();
        std::io::stdin().read_to_string(&mut buffer).map_err(io_err)?;
        let documents = split_instance_stream(&buffer);
        if documents.is_empty() {
            return Err("stdin contained no instances".into());
        }
        for (index, text) in documents.iter().enumerate() {
            let instance = parse_instance(text)
                .map_err(|e| format!("cannot parse stdin instance {index}: {e}"))?;
            names.push(instance.name().to_string());
            instances.push(instance);
        }
    } else {
        let entries = std::fs::read_dir(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut files: Vec<std::path::PathBuf> = entries
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "dsq"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("no .dsq instance files in {path}"));
        }
        for file in files {
            let name = file.file_name().map(|f| f.to_string_lossy().into_owned());
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let instance = parse_instance(&text)
                .map_err(|e| format!("cannot parse {}: {e}", file.display()))?;
            names.push(name.unwrap_or_else(|| instance.name().to_string()));
            instances.push(instance);
        }
    }

    let workers = NonZeroUsize::new(workers).expect("checked > 0");

    // Remote mode: the same request stream, served through a
    // fingerprint-sharded fleet of daemons instead of an in-process
    // cache (the backends keep their own caches and snapshots).
    if let Some(spec) = remote {
        let addrs = parse_fleet_spec(spec)?;
        let fleet = build_fleet(&addrs, cache_config.quantization, config)?;
        let started = Instant::now();
        let results = plan_batch(&fleet, &instances, workers);
        let elapsed = started.elapsed();
        write_served_lines(out, &names, &results)?;
        writeln!(
            out,
            "served {} requests in {:.1} ms ({:.0} req/s) with {} workers",
            results.len(),
            elapsed.as_secs_f64() * 1e3,
            results.len() as f64 / elapsed.as_secs_f64(),
            workers,
        )
        .map_err(io_err)?;
        return write_fleet_summary(out, &fleet);
    }

    // Hold the snapshot lock across the whole run, so a concurrent
    // `serve --snapshot` (or second batch run) on the same path cannot
    // interleave last-writer-wins renames with ours.
    let _snapshot_lock = snapshot_out
        .map(|p| SnapshotLock::acquire(std::path::Path::new(p)).map_err(|e| e.to_string()))
        .transpose()?;
    let cache = std::sync::Arc::new(PlanCache::new(cache_config));
    if let Some(snapshot_path) = snapshot_in {
        let text = std::fs::read_to_string(snapshot_path)
            .map_err(|e| format!("cannot read {snapshot_path}: {e}"))?;
        let restored = cache
            .restore_from_text(&text)
            .map_err(|e| format!("cannot restore snapshot {snapshot_path}: {e}"))?;
        writeln!(out, "restored {restored} cached plans from {snapshot_path}").map_err(io_err)?;
    }
    // Tiered mode answers every miss with the greedy heuristic (those
    // lines carry `tier heur`) and refines in the background; the drain
    // below makes the refinements land before stats or snapshot-out, so
    // the written snapshot only ever holds exact plans.
    let tiered_planner =
        tiered.then(|| TieredPlanner::new(std::sync::Arc::clone(&cache), config.clone()));
    let planner = CachedPlanner::new(&cache, config);
    let started = Instant::now();
    let results = match &tiered_planner {
        Some(tiered) => plan_batch(tiered, &instances, workers),
        None => plan_batch(&planner, &instances, workers),
    };
    let elapsed = started.elapsed();
    if let Some(tiered) = &tiered_planner {
        tiered.drain().map_err(|e| format!("refinement drain failed: {e}"))?;
    }

    write_served_lines(out, &names, &results)?;
    let stats = cache.stats();
    writeln!(
        out,
        "served {} requests in {:.1} ms ({:.0} req/s) with {} workers",
        results.len(),
        elapsed.as_secs_f64() * 1e3,
        results.len() as f64 / elapsed.as_secs_f64(),
        workers,
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "cache: {} hits, {} warm starts, {} cold ({:.1}% hit-rate); {} entries, {} evictions",
        stats.hits,
        stats.warm_starts,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.entries,
        stats.evictions,
    )
    .map_err(io_err)?;
    if let Some(tiered) = &tiered_planner {
        let t = tiered.tiered_stats();
        writeln!(
            out,
            "tiered: {} tier-1 answers, {} refined ({} skipped, {} dropped), max gap {:.2}%",
            t.heuristic_served,
            t.refined,
            t.refine_skipped,
            t.refine_dropped,
            t.max_gap * 100.0,
        )
        .map_err(io_err)?;
    }
    if let Some(snapshot_path) = snapshot_out {
        let snapshot = cache.snapshot();
        std::fs::write(snapshot_path, snapshot.to_text())
            .map_err(|e| format!("cannot write {snapshot_path}: {e}"))?;
        writeln!(out, "wrote snapshot ({} entries) to {snapshot_path}", snapshot.entries.len())
            .map_err(io_err)?;
    }
    Ok(())
}

/// Writes one `name  source  cost  plan` line per served request,
/// surfacing the first planner error (local planners never produce one;
/// a fleet with a cold fallback only fails if the fallback itself does).
fn write_served_lines(
    out: &mut dyn std::io::Write,
    names: &[String],
    results: &[Result<ServedPlan, dsq_service::PlanError>],
) -> Result<(), CliError> {
    for (name, result) in names.iter().zip(results) {
        let served = result.as_ref().map_err(|e| format!("request {name} failed: {e}"))?;
        writeln!(
            out,
            "{:<28} {:<5} cost {:<12.6} plan {}{}",
            name,
            served.source.name(),
            served.cost,
            served.plan,
            tier_suffix(served.tier),
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// The trailing tier marker on served-plan lines: exact plans render
/// exactly as before tiered serving existed, heuristic ones carry the
/// same ` tier heur` token the wire protocol uses.
fn tier_suffix(tier: PlanTier) -> &'static str {
    match tier {
        PlanTier::Exact => "",
        PlanTier::Heuristic => " tier heur",
    }
}

fn serve_cmd<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let mut addr: Option<ListenAddr> = None;
    let mut config = ServerConfig::default();
    while let Some(arg) = args.next() {
        if parse_cache_flag(arg, args, &mut config.cache)? {
            continue;
        }
        if let Some(parsed) = parse_addr_flag(arg, args)? {
            addr = Some(parsed);
            continue;
        }
        match arg {
            "--workers" => {
                config.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .and_then(NonZeroUsize::new)
                    .ok_or("--workers needs a positive integer")?
            }
            "--config" => config.bnb = parse_config(args.next().ok_or("--config needs a value")?)?,
            "--queue" => {
                config.queue_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .ok_or("--queue needs a positive integer")?
            }
            "--retry-ms" => {
                config.retry_after_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--retry-ms needs a non-negative integer")?
            }
            "--snapshot" => {
                config.snapshot_path =
                    Some(PathBuf::from(args.next().ok_or("--snapshot needs a file")?))
            }
            "--snapshot-interval-secs" => {
                config.snapshot_interval = Duration::from_secs(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v| v > 0)
                        .ok_or("--snapshot-interval-secs needs a positive integer")?,
                )
            }
            "--tiered" => config.tiered = true,
            "--max-pipeline" => {
                config.max_pipeline = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .ok_or("--max-pipeline needs a positive integer")?
            }
            // Deterministic fault injection on the response path: the
            // moderate chaos mix, replayable from the seed.
            "--chaos" => {
                let seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--chaos needs a seed (a non-negative integer)")?;
                config.chaos = Some(FaultProfile::moderate(seed));
            }
            other => return Err(format!("unknown serve flag `{other}`")),
        }
    }
    let addr = addr.ok_or("serve requires --unix PATH or --tcp ADDR")?;
    // One reactor thread holding thousands of sockets needs the process
    // fd budget to match; best-effort raise toward the hard cap.
    let _ = reactor::ensure_nofile_limit(8192);
    let server = Server::start(&addr, &config).map_err(|e| format!("cannot start server: {e}"))?;
    let stats = server.stats();
    if stats.restored_entries > 0 {
        writeln!(out, "restored {} cached plans from snapshot", stats.restored_entries)
            .map_err(io_err)?;
    }
    writeln!(
        out,
        "listening on {} ({} workers, queue {}, {} probes{}{})",
        server.listen_addr(),
        config.workers,
        config.queue_capacity,
        config.cache.probes,
        if config.tiered { ", tiered" } else { "" },
        if config.chaos.is_some() { ", chaos" } else { "" },
    )
    .map_err(io_err)?;
    out.flush().map_err(io_err)?;

    // Graceful shutdown on stdin EOF (the foreground idiom: Ctrl-D, or
    // closing the pipe a supervisor holds) or on a client's `shutdown`
    // request; whichever arrives first. The EOF watcher is skipped when
    // stdin is a non-terminal character device (`< /dev/null`, the
    // daemonized idiom) — there EOF is immediate and means "no
    // controlling input", not "drain now".
    if stdin_signals_shutdown() {
        let handle = server.shutdown_handle();
        std::thread::spawn(move || {
            let mut sink = [0u8; 4096];
            let mut stdin = std::io::stdin();
            loop {
                match stdin.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            handle.request_shutdown();
        });
    }
    server.wait_shutdown_requested();
    writeln!(out, "shutdown requested; draining in-flight requests").map_err(io_err)?;
    let stats = server.shutdown();
    writeln!(out, "{stats}").map_err(io_err)?;
    writeln!(out, "drained cleanly").map_err(io_err)
}

/// Whether `dsq serve` should treat stdin EOF as a drain request.
///
/// True for terminals (Ctrl-D) and pipes/FIFOs/files (a supervisor
/// closing its end); false for non-terminal character devices — i.e.
/// `dsq serve < /dev/null &`, where EOF arrives instantly and shutting
/// down on it would kill the daemon before its first request.
fn stdin_signals_shutdown() -> bool {
    use std::io::IsTerminal;
    use std::os::unix::fs::FileTypeExt;
    if std::io::stdin().is_terminal() {
        return true;
    }
    // Linux: stat what fd 0 actually points at.
    std::fs::metadata("/proc/self/fd/0").map(|m| !m.file_type().is_char_device()).unwrap_or(false)
}

/// `(name, document)` request pairs for `client optimize`; `-` expands
/// to the concatenated stdin stream, like serve-batch.
fn gather_client_requests(files: &[&str]) -> Result<Vec<(String, String)>, CliError> {
    let mut requests: Vec<(String, String)> = Vec::new();
    for file in files {
        if *file == "-" {
            let mut buffer = String::new();
            std::io::stdin().read_to_string(&mut buffer).map_err(io_err)?;
            let documents = split_instance_stream(&buffer);
            if documents.is_empty() {
                return Err("stdin contained no instances".into());
            }
            for (index, text) in documents.into_iter().enumerate() {
                requests.push((format!("stdin[{index}]"), text));
            }
        } else {
            let text =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
            requests.push((file.to_string(), text));
        }
    }
    Ok(requests)
}

fn client_cmd<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let mut addr: Option<ListenAddr> = None;
    let mut fleet_spec: Option<&str> = None;
    let mut fleet_config_path: Option<&str> = None;
    let mut routing = Quantization::default();
    let mut repeat = 1usize;
    let mut pipelined = false;
    let mut command: Option<&str> = None;
    let mut files: Vec<&str> = Vec::new();
    while let Some(arg) = args.next() {
        if let Some(parsed) = parse_addr_flag(arg, args)? {
            addr = Some(parsed);
            continue;
        }
        match arg {
            "--pipeline" => pipelined = true,
            "--repeat" => {
                repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .ok_or("--repeat needs a positive integer")?
            }
            "--fleet" => {
                fleet_spec =
                    Some(args.next().ok_or("--fleet needs a comma-separated address list")?)
            }
            "--fleet-config" => {
                fleet_config_path = Some(args.next().ok_or("--fleet-config needs a file")?)
            }
            // Routing quantization for --fleet: must match the backends'
            // cache --resolution, or a query drifting inside one backend
            // bucket can still flip its routing fingerprint and smear
            // the key across both backends.
            "--resolution" => {
                let value: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|v| (0.0..1.0).contains(v) && *v > 0.0)
                    .ok_or("--resolution needs a number in (0, 1)")?;
                routing = Quantization::new(value);
            }
            other if command.is_none() => command = Some(other),
            other => files.push(other),
        }
    }
    if addr.is_none() && fleet_spec.is_none() && fleet_config_path.is_none() {
        return Err("client requires --unix PATH or --tcp ADDR".into());
    }
    let command =
        command.ok_or("client requires a command (optimize|stats|metrics|ping|shutdown|hold)")?;
    // Validate the request before dialing, so usage errors do not depend
    // on a live server.
    if !matches!(command, "optimize" | "stats" | "metrics" | "ping" | "shutdown" | "hold") {
        return Err(format!("unknown client command `{command}`"));
    }
    if command == "optimize" && files.is_empty() {
        return Err("client optimize requires at least one instance file".into());
    }
    if pipelined && command != "optimize" {
        return Err("--pipeline only applies to the optimize command".into());
    }
    let hold_count = if command == "hold" {
        files
            .first()
            .and_then(|v| v.parse().ok())
            .filter(|&v: &usize| v > 0)
            .ok_or("client hold needs a positive connection count")?
    } else {
        0
    };

    // Fleet mode: shard the requests across the backends by canonical
    // fingerprint, with failover and a local cold fallback. The backend
    // list comes from --fleet directly, or from a versioned fleet-config
    // file that is re-resolved between repeat rounds — an operator can
    // push a new generation mid-run and the router cuts over to the new
    // layout atomically.
    if fleet_spec.is_some() || fleet_config_path.is_some() {
        let flag = if fleet_config_path.is_some() { "--fleet-config" } else { "--fleet" };
        if addr.is_some() {
            return Err(format!("{flag} replaces --unix/--tcp; give one or the other"));
        }
        if fleet_spec.is_some() && fleet_config_path.is_some() {
            return Err("--fleet-config replaces --fleet; give one or the other".into());
        }
        if command != "optimize" {
            return Err(format!("{flag} only supports the optimize command, not `{command}`"));
        }
        let mut membership = fleet_config_path
            .map(|path| FleetMembership::load(path).map_err(|e| e.to_string()))
            .transpose()?;
        let addrs = match (&membership, fleet_spec) {
            (Some(m), _) => fleet_config_addrs(m.current())?,
            (None, Some(spec)) => parse_fleet_spec(spec)?,
            (None, None) => unreachable!("fleet mode requires one of the flags"),
        };
        let mut fleet = build_fleet(&addrs, routing.clone(), BnbConfig::paper())?;
        // Parse once, before any request goes out: a bad document is an
        // up-front usage error, not a mid-stream failure on repeat 1.
        let requests: Vec<(String, QueryInstance)> = gather_client_requests(&files)?
            .into_iter()
            .map(|(name, text)| {
                parse_instance(&text)
                    .map(|instance| (name.clone(), instance))
                    .map_err(|e| format!("cannot parse {name}: {e}"))
            })
            .collect::<Result<_, _>>()?;
        for round in 0..repeat {
            // Between rounds, re-resolve the fleet-config file. A
            // strictly newer generation is an atomic cutover; the
            // retiring fleet's summary is flushed first so its counters
            // are not silently discarded.
            if round > 0 {
                if let Some(membership) = membership.as_mut() {
                    if let Some(next) = membership.refresh() {
                        let next = next.clone();
                        write_fleet_summary(out, &fleet)?;
                        writeln!(
                            out,
                            "fleet config cut over to generation {} ({} backends)",
                            next.generation,
                            next.endpoints.len(),
                        )
                        .map_err(io_err)?;
                        fleet = build_fleet(
                            &fleet_config_addrs(&next)?,
                            routing.clone(),
                            BnbConfig::paper(),
                        )?;
                    }
                }
            }
            for (name, instance) in &requests {
                let served =
                    fleet.plan(instance).map_err(|e| format!("request {name} failed: {e}"))?;
                writeln!(
                    out,
                    "{name:<28} {:<5} cost {:<12.6} plan {}{}",
                    served.source.name(),
                    served.cost,
                    served.plan,
                    tier_suffix(served.tier),
                )
                .map_err(io_err)?;
            }
        }
        return write_fleet_summary(out, &fleet);
    }

    let addr = addr.expect("checked above");
    let mut client =
        Client::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let transport = |e: std::io::Error| format!("request failed: {e}");
    let write_response =
        |out: &mut dyn std::io::Write, name: &str, response: Response| -> Result<(), CliError> {
            match response {
                Response::Served { source, cost, plan, tier, .. } => {
                    let plan = Plan::new(plan).map_err(|e| e.to_string())?;
                    writeln!(
                        out,
                        "{name:<28} {:<5} cost {cost:<12.6} plan {plan}{}",
                        source.name(),
                        tier_suffix(tier),
                    )
                    .map_err(io_err)
                }
                Response::Busy { retry_after_ms } => {
                    writeln!(out, "{name:<28} busy  retry-after-ms {retry_after_ms}")
                        .map_err(io_err)
                }
                Response::Error { message } => Err(format!("server error for {name}: {message}")),
                other => Err(format!("unexpected response: {other:?}")),
            }
        };
    match command {
        "optimize" => {
            let requests = gather_client_requests(&files)?;
            if pipelined {
                // One coalesced frame per round; responses come back in
                // request order, so the output lines match the
                // sequential path's exactly.
                let batch: Vec<PipelineRequest> = requests
                    .iter()
                    .map(|(_, text)| PipelineRequest::Optimize(text.clone()))
                    .collect();
                for _ in 0..repeat {
                    let responses = client.pipeline(&batch).map_err(transport)?;
                    for ((name, _), response) in requests.iter().zip(responses) {
                        write_response(out, name, response)?;
                    }
                }
                return Ok(());
            }
            for _ in 0..repeat {
                for (name, text) in &requests {
                    let response = client.optimize_text(text).map_err(transport)?;
                    write_response(out, name, response)?;
                }
            }
            Ok(())
        }
        "hold" => {
            let count = hold_count;
            let _ = reactor::ensure_nofile_limit((count as u64).saturating_add(64));
            // Every connection is pinged at connect time and re-verified
            // at drain time; the second line is the held/dropped
            // accounting tests assert instead of scraping procfs.
            let report = hold_connections(&addr, count).map_err(|e| e.to_string())?;
            writeln!(out, "held {} concurrent connections on {addr}", report.requested)
                .map_err(io_err)?;
            writeln!(out, "{}", report.summary_line()).map_err(io_err)
        }
        "stats" => match client.stats().map_err(transport)? {
            Response::Stats(s) => writeln!(
                out,
                "requests {} hits {} probe2 {} warm {} cold {} busy {} hit-rate {:.1}% entries {}",
                s.requests,
                s.hits,
                s.probe2_hits,
                s.warm_starts,
                s.cold,
                s.busy_rejections,
                s.hit_rate * 100.0,
                s.entries,
            )
            .map_err(io_err),
            other => Err(format!("unexpected response: {other:?}")),
        },
        "metrics" => {
            let text = client.metrics().map_err(transport)?;
            out.write_all(text.as_bytes()).map_err(io_err)
        }
        "ping" => match client.ping().map_err(transport)? {
            Response::Pong => writeln!(out, "pong").map_err(io_err),
            other => Err(format!("unexpected response: {other:?}")),
        },
        "shutdown" => match client.shutdown_server().map_err(transport)? {
            Response::Draining => writeln!(out, "server draining").map_err(io_err),
            other => Err(format!("unexpected response: {other:?}")),
        },
        _ => unreachable!("command validated above"),
    }
}

/// `dsq loadgen`: the open-loop soak generator. One thread, connection,
/// and Poisson arrival schedule per request class; latency is measured
/// from each request's scheduled send time, so server slowdowns surface
/// as tail latency instead of silently throttling the generator
/// (coordinated omission).
fn loadgen_cmd<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let mut addr: Option<ListenAddr> = None;
    let mut config = LoadgenConfig::default();
    let mut json = false;
    while let Some(arg) = args.next() {
        if let Some(parsed) = parse_addr_flag(arg, args)? {
            addr = Some(parsed);
            continue;
        }
        match arg {
            "--json" => json = true,
            "--rate" => {
                config.rate = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|v: &f64| v.is_finite() && *v > 0.0)
                    .ok_or("--rate needs a positive requests-per-second number")?
            }
            "--requests" => {
                config.requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .ok_or("--requests needs a positive integer")?
            }
            "-n" => {
                config.n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 2)
                    .ok_or("-n needs an integer >= 2")?
            }
            "--seed" => {
                config.seed =
                    args.next().and_then(|v| v.parse().ok()).ok_or("--seed needs an integer")?
            }
            "--pipeline-depth" => {
                config.pipeline_depth = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .ok_or("--pipeline-depth needs a positive integer")?
            }
            "--classes" => {
                let spec = args.next().ok_or("--classes needs a comma-separated class list")?;
                config.classes = spec
                    .split(',')
                    .map(|token| {
                        RequestClass::parse(token.trim()).ok_or_else(|| {
                            format!("unknown request class `{token}` (drift|boundary|pipelined)")
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if config.classes.is_empty() {
                    return Err("--classes needs at least one class".into());
                }
            }
            other => return Err(format!("unknown loadgen flag `{other}`\n{USAGE}")),
        }
    }
    let addr = addr.ok_or("loadgen requires --unix PATH or --tcp ADDR")?;
    let report = config.run(&addr).map_err(|e| format!("loadgen failed: {e}"))?;
    if json {
        writeln!(out, "{}", report.to_json()).map_err(io_err)
    } else {
        writeln!(out, "{}", report.summary()).map_err(io_err)
    }
}

/// `dsq fleet` subcommands: operator verbs that act on a whole fleet of
/// daemons rather than a single one.
fn fleet_cmd<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    match args.next() {
        Some("rebalance") => fleet_rebalance_cmd(args, out),
        Some(other) => Err(format!("unknown fleet command `{other}`")),
        None => Err("fleet requires a subcommand (rebalance)".into()),
    }
}

/// `dsq fleet rebalance --from ADDRS --to ADDRS`: warm partition
/// handoff for a fleet resize. Every `--from` backend is told the new
/// `--to` layout and exports exactly the cache entries it no longer
/// owns (a backend absent from `--to` drains completely); each exported
/// entry is routed on the new consistent-hash ring and imported into
/// its inheriting backend. Moved keys are then served by their new
/// owners as validated cache hits — the resize recomputes nothing.
fn fleet_rebalance_cmd<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let mut from_spec: Option<&str> = None;
    let mut to_spec: Option<&str> = None;
    let mut vnodes = DEFAULT_VNODES;
    while let Some(arg) = args.next() {
        match arg {
            "--from" => {
                from_spec = Some(args.next().ok_or("--from needs a comma-separated address list")?)
            }
            "--to" => {
                to_spec = Some(args.next().ok_or("--to needs a comma-separated address list")?)
            }
            "--vnodes" => {
                vnodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .ok_or("--vnodes needs a positive integer")?
            }
            other => return Err(format!("unknown fleet rebalance flag `{other}`")),
        }
    }
    let from = parse_fleet_spec(from_spec.ok_or("fleet rebalance requires --from and --to")?)?;
    let to = parse_fleet_spec(to_spec.ok_or("fleet rebalance requires --from and --to")?)?;
    // Ring labels must byte-match what a fleet client routes over —
    // `FleetPlanner` labels each backend with its `RemotePlanner` name —
    // or the handoff would park keys where no client ever looks.
    let labels: Vec<String> = to.iter().map(|addr| format!("remote({addr})")).collect();
    let ring = HashRing::with_vnodes(&labels, vnodes);
    let mut moved = 0u64;
    for donor in &from {
        // A donor surviving into the new layout keeps its own slot; one
        // leaving the fleet keeps none (`keep == len`, the drain form).
        let keep = to.iter().position(|addr| addr == donor).unwrap_or(to.len());
        let mut client =
            Client::connect(donor).map_err(|e| format!("cannot connect to {donor}: {e}"))?;
        let request = ExportRequest { vnodes, keep, backends: labels.clone() };
        let partition = client
            .export_partition(&request)
            .map_err(|e| format!("export from {donor} failed: {e}"))?;
        writeln!(out, "rebalance: {donor} exported {} entries", partition.entries.len())
            .map_err(io_err)?;
        for (index, inheritor) in to.iter().enumerate() {
            if index == keep {
                continue;
            }
            let entries: Vec<_> = partition
                .entries
                .iter()
                .filter(|entry| ring.route(entry.fingerprint) == index)
                .cloned()
                .collect();
            if entries.is_empty() {
                continue;
            }
            let shard = PlanSnapshot { resolution: partition.resolution, entries };
            let mut receiver = Client::connect(inheritor)
                .map_err(|e| format!("cannot connect to {inheritor}: {e}"))?;
            let restored = receiver
                .import_partition(&shard)
                .map_err(|e| format!("import into {inheritor} failed: {e}"))?;
            writeln!(out, "rebalance: {inheritor} inherited {restored} entries from {donor}")
                .map_err(io_err)?;
            moved += restored;
        }
    }
    writeln!(out, "rebalance complete: moved {moved} entries onto {} backends", to.len())
        .map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(args: &[&str]) -> String {
        let mut out = Vec::new();
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&args, &mut out).expect("command succeeds");
        String::from_utf8(out).expect("utf8 output")
    }

    fn run_err(args: &[&str]) -> String {
        let mut out = Vec::new();
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&args, &mut out).expect_err("command fails")
    }

    fn temp_instance() -> (std::path::PathBuf, String) {
        let text = run_ok(&["generate", "--family", "clustered", "-n", "5", "--seed", "7"]);
        let path = std::env::temp_dir().join(format!("dsq-cli-test-{}.dsq", std::process::id()));
        std::fs::write(&path, &text).expect("write temp instance");
        (path, text)
    }

    #[test]
    fn generate_produces_parseable_instances() {
        let text = run_ok(&["generate", "--family", "euclidean", "-n", "6", "--seed", "2"]);
        let inst = parse_instance(&text).expect("round-trips");
        assert_eq!(inst.len(), 6);
        // Deterministic in the seed.
        assert_eq!(text, run_ok(&["generate", "--family", "euclidean", "-n", "6", "--seed", "2"]));
    }

    #[test]
    fn optimize_reports_plan_and_stats() {
        let (path, _) = temp_instance();
        let text = run_ok(&["optimize", path.to_str().expect("utf8 path")]);
        assert!(text.contains("plan"));
        assert!(text.contains("cost"));
        assert!(text.contains("optimal   true"));
        assert!(text.contains("nodes visited"));
        let parallel = run_ok(&[
            "optimize",
            path.to_str().expect("utf8 path"),
            "--parallel",
            "2",
            "--config",
            "extended",
        ]);
        assert!(parallel.contains("optimal   true"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn explain_breaks_down_given_plan() {
        let (path, _) = temp_instance();
        let text = run_ok(&["explain", path.to_str().expect("utf8"), "--plan", "4,3,2,1,0"]);
        assert!(text.contains("bottleneck cost"));
        assert!(text.contains("WS4"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn baselines_table_lists_methods() {
        let (path, _) = temp_instance();
        let text = run_ok(&["baselines", path.to_str().expect("utf8")]);
        for needle in ["branch-and-bound", "greedy", "beam", "annealing", "random mean"] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
        // The B&B row is the 1.000× reference.
        assert!(text.contains("1.000×"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn simulate_reports_throughput() {
        let (path, _) = temp_instance();
        let text =
            run_ok(&["simulate", path.to_str().expect("utf8"), "--tuples", "2000", "--block", "8"]);
        assert!(text.contains("predicted tput"));
        assert!(text.contains("tuples in"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn errors_are_informative() {
        assert!(run_err(&["bogus"]).contains("unknown command"));
        assert!(run_err(&["generate", "-n", "4"]).contains("--family"));
        assert!(run_err(&["generate", "--family", "nope", "-n", "4"]).contains("unknown family"));
        assert!(run_err(&["optimize"]).contains("instance file"));
        assert!(run_err(&["optimize", "/nonexistent/x.dsq"]).contains("cannot read"));
        let (path, _) = temp_instance();
        assert!(run_err(&["explain", path.to_str().expect("utf8"), "--plan", "0,1"])
            .contains("instance has 5"));
        assert!(run_err(&["optimize", path.to_str().expect("utf8"), "--config", "zap"])
            .contains("unknown config"));
        std::fs::remove_file(path).ok();
    }

    /// The exact messages are part of the CLI contract: scripts match on
    /// them, so changes must be deliberate.
    #[test]
    fn error_messages_are_exact() {
        let (path, _) = temp_instance();
        let file = path.to_str().expect("utf8 path");
        // Malformed --plan lists.
        assert_eq!(run_err(&["explain", file, "--plan", "0,x,2,3,4"]), "bad plan index `x`");
        assert_eq!(run_err(&["explain", file, "--plan", "0, ,2,3,4"]), "bad plan index ` `");
        // Out-of-range / duplicate indices.
        assert_eq!(
            run_err(&["explain", file, "--plan", "0,1,2,3,9"]),
            "invalid plan: service index 9 out of range for 5 services"
        );
        assert_eq!(
            run_err(&["explain", file, "--plan", "0,1,2,3,3"]),
            "invalid plan: service 3 appears twice"
        );
        assert_eq!(
            run_err(&["explain", file, "--plan", "0,1"]),
            "plan has 2 services, instance has 5"
        );
        // Unknown family / config.
        assert_eq!(run_err(&["generate", "--family", "mesh", "-n", "4"]), "unknown family `mesh`");
        assert_eq!(run_err(&["optimize", file, "--config", "zap"]), "unknown config `zap`");
        // serve-batch argument errors.
        assert_eq!(run_err(&["serve-batch"]), "serve-batch requires a directory or `-` for stdin");
        assert_eq!(
            run_err(&["serve-batch", "/tmp", "--workers", "0"]),
            "--workers needs a positive integer"
        );
        assert_eq!(
            run_err(&["serve-batch", "/tmp", "--resolution", "7"]),
            "--resolution needs a number in (0, 1)"
        );
        let missing = run_err(&["serve-batch", "/nonexistent-dsq-dir"]);
        assert!(missing.starts_with("cannot read /nonexistent-dsq-dir:"), "{missing}");
        // serve / client argument errors.
        assert_eq!(run_err(&["serve"]), "serve requires --unix PATH or --tcp ADDR");
        assert_eq!(run_err(&["serve", "--unix"]), "--unix needs a path");
        assert_eq!(run_err(&["serve", "--tcp", "x", "--probes", "3"]), "--probes must be 1 or 2");
        assert_eq!(
            run_err(&["serve", "--tcp", "x", "--queue", "0"]),
            "--queue needs a positive integer"
        );
        assert_eq!(run_err(&["serve", "--tcp", "x", "--bogus"]), "unknown serve flag `--bogus`");
        assert_eq!(
            run_err(&["serve", "--tcp", "x", "--chaos", "nope"]),
            "--chaos needs a seed (a non-negative integer)"
        );
        assert_eq!(run_err(&["client", "stats"]), "client requires --unix PATH or --tcp ADDR");
        assert_eq!(
            run_err(&["client", "--unix", "/tmp/x.sock"]),
            "client requires a command (optimize|stats|metrics|ping|shutdown|hold)"
        );
        assert_eq!(
            run_err(&["client", "--unix", "/tmp/x.sock", "reboot"]),
            "unknown client command `reboot`"
        );
        assert_eq!(
            run_err(&["client", "--unix", "/tmp/x.sock", "optimize"]),
            "client optimize requires at least one instance file"
        );
        assert_eq!(
            run_err(&["client", "--unix", "/tmp/x.sock", "--pipeline", "ping"]),
            "--pipeline only applies to the optimize command"
        );
        assert_eq!(
            run_err(&["client", "--unix", "/tmp/x.sock", "hold", "zero"]),
            "client hold needs a positive connection count"
        );
        // loadgen argument errors.
        assert_eq!(run_err(&["loadgen"]), "loadgen requires --unix PATH or --tcp ADDR");
        assert_eq!(
            run_err(&["loadgen", "--tcp", "x", "--rate", "0"]),
            "--rate needs a positive requests-per-second number"
        );
        assert_eq!(
            run_err(&["loadgen", "--tcp", "x", "--requests", "0"]),
            "--requests needs a positive integer"
        );
        assert_eq!(
            run_err(&["loadgen", "--tcp", "x", "--classes", "drift,warp"]),
            "unknown request class `warp` (drift|boundary|pipelined)"
        );
        assert_eq!(
            run_err(&["loadgen", "--tcp", "x", "--pipeline-depth", "0"]),
            "--pipeline-depth needs a positive integer"
        );
        assert_eq!(
            run_err(&["serve", "--tcp", "x", "--max-pipeline", "0"]),
            "--max-pipeline needs a positive integer"
        );
        let unreachable = run_err(&["client", "--unix", "/nonexistent/dsq.sock", "ping"]);
        assert!(
            unreachable.starts_with("cannot connect to unix:///nonexistent/dsq.sock:"),
            "{unreachable}"
        );
        assert_eq!(
            run_err(&["serve-batch", "/tmp", "--snapshot-in"]),
            "--snapshot-in needs a file"
        );
        std::fs::remove_file(path).ok();
    }

    /// `serve-batch --snapshot-out/--snapshot-in`: warm plans cross
    /// processes through the snapshot file — a second batch run starts at
    /// a 100% hit rate.
    #[test]
    fn serve_batch_snapshots_carry_warm_plans_across_runs() {
        let dir = std::env::temp_dir().join(format!("dsq-snap-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create batch dir");
        for (name, seed) in [("a.dsq", 31u64), ("b.dsq", 32), ("c.dsq", 33)] {
            let text = run_ok(&[
                "generate",
                "--family",
                "clustered",
                "-n",
                "6",
                "--seed",
                &seed.to_string(),
            ]);
            std::fs::write(dir.join(name), text).expect("write instance");
        }
        let dir_arg = dir.to_str().expect("utf8");
        let snapshot = dir.join("plans.dsqc");
        let snapshot_arg = snapshot.to_str().expect("utf8");

        let first =
            run_ok(&["serve-batch", dir_arg, "--workers", "1", "--snapshot-out", snapshot_arg]);
        assert!(first.contains("cache: 0 hits, 0 warm starts, 3 cold"), "{first}");
        assert!(
            first.contains(&format!("wrote snapshot (3 entries) to {snapshot_arg}")),
            "{first}"
        );
        assert!(snapshot.exists());

        let second =
            run_ok(&["serve-batch", dir_arg, "--workers", "1", "--snapshot-in", snapshot_arg]);
        assert!(
            second.contains(&format!("restored 3 cached plans from {snapshot_arg}")),
            "{second}"
        );
        assert!(second.contains("cache: 3 hits, 0 warm starts, 0 cold"), "{second}");

        // A resolution mismatch is rejected with the restore error.
        let mismatch = run_err(&[
            "serve-batch",
            dir_arg,
            "--snapshot-in",
            snapshot_arg,
            "--resolution",
            "0.1",
        ]);
        assert_eq!(
            mismatch,
            format!(
                "cannot restore snapshot {snapshot_arg}: snapshot resolution 0.05 does not match cache resolution 0.1"
            )
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `serve-batch --tiered`: misses are answered by the greedy tier
    /// (their lines carry `tier heur`), the pre-exit drain refines every
    /// entry, and the snapshot hands a second run pure exact hits.
    #[test]
    fn serve_batch_tiered_answers_heur_then_refines_before_the_snapshot() {
        let dir = std::env::temp_dir().join(format!("dsq-tiered-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create batch dir");
        for (name, seed) in [("a.dsq", 51u64), ("b.dsq", 52), ("c.dsq", 53)] {
            let text = run_ok(&[
                "generate",
                "--family",
                "clustered",
                "-n",
                "6",
                "--seed",
                &seed.to_string(),
            ]);
            std::fs::write(dir.join(name), text).expect("write instance");
        }
        let dir_arg = dir.to_str().expect("utf8");
        let snapshot = dir.join("plans.dsqc");
        let snapshot_arg = snapshot.to_str().expect("utf8");

        let first = run_ok(&[
            "serve-batch",
            dir_arg,
            "--workers",
            "1",
            "--tiered",
            "--snapshot-out",
            snapshot_arg,
        ]);
        let heur_lines = first.lines().filter(|l| l.ends_with(" tier heur")).count();
        assert_eq!(heur_lines, 3, "every miss is answered by the greedy tier:\n{first}");
        assert!(first.contains("tiered: 3 tier-1 answers, 3 refined"), "{first}");
        // The drain ran before the snapshot: all three entries are exact
        // and eligible for persistence.
        assert!(
            first.contains(&format!("wrote snapshot (3 entries) to {snapshot_arg}")),
            "{first}"
        );

        let second = run_ok(&[
            "serve-batch",
            dir_arg,
            "--workers",
            "1",
            "--tiered",
            "--snapshot-in",
            snapshot_arg,
        ]);
        assert!(second.contains("cache: 3 hits, 0 warm starts, 0 cold"), "{second}");
        assert!(
            !second.contains("tier heur"),
            "refined entries serve as exact hits after the warm restart:\n{second}"
        );
        assert!(second.contains("tiered: 0 tier-1 answers, 0 refined"), "{second}");

        assert_eq!(
            run_err(&["serve-batch", dir_arg, "--tiered", "--remote", "tcp://x"]),
            "--remote backends choose their own serving mode; drop --tiered"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_batch_smoke_over_a_directory() {
        let dir = std::env::temp_dir().join(format!("dsq-serve-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create batch dir");
        // Two copies of the same query and one distinct one: the repeat
        // must hit the cache.
        for (name, seed) in [("a.dsq", 3u64), ("b.dsq", 3), ("c.dsq", 4)] {
            let text = run_ok(&[
                "generate",
                "--family",
                "clustered",
                "-n",
                "6",
                "--seed",
                &seed.to_string(),
            ]);
            std::fs::write(dir.join(name), text).expect("write instance");
        }
        std::fs::write(dir.join("ignored.txt"), "not an instance").expect("write decoy");
        let out = run_ok(&["serve-batch", dir.to_str().expect("utf8"), "--workers", "2"]);
        for needle in ["a.dsq", "b.dsq", "c.dsq", "served 3 requests", "hit-rate"] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
        assert!(out.contains("cache: 1 hits, 0 warm starts, 2 cold"), "{out}");
        // a/b identical → identical plan lines modulo the file name.
        let lines: Vec<&str> = out.lines().collect();
        let plan_of = |line: &str| line.split("plan ").nth(1).map(str::to_string);
        assert_eq!(plan_of(lines[0]), plan_of(lines[1]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_batch_rejects_instancefree_directories() {
        let dir = std::env::temp_dir().join(format!("dsq-serve-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create empty dir");
        let message = run_err(&["serve-batch", dir.to_str().expect("utf8")]);
        assert_eq!(message, format!("no .dsq instance files in {}", dir.display()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn instance_streams_split_on_headers() {
        let one = run_ok(&["generate", "--family", "euclidean", "-n", "4", "--seed", "1"]);
        let two = run_ok(&["generate", "--family", "euclidean", "-n", "5", "--seed", "2"]);
        let stream = format!("{one}{two}");
        let documents = split_instance_stream(&stream);
        assert_eq!(documents.len(), 2);
        assert_eq!(parse_instance(&documents[0]).expect("first parses").len(), 4);
        assert_eq!(parse_instance(&documents[1]).expect("second parses").len(), 5);
        assert!(split_instance_stream("").is_empty());
        assert!(split_instance_stream("  \n\nnoise without a header\n").is_empty());
    }

    #[test]
    fn fleet_spec_parsing_covers_all_forms() {
        let addrs = parse_fleet_spec("unix:///tmp/a.sock, tcp://127.0.0.1:7878,/tmp/b.sock,host:9")
            .expect("parses");
        assert_eq!(
            addrs,
            vec![
                ListenAddr::Unix("/tmp/a.sock".into()),
                ListenAddr::Tcp("127.0.0.1:7878".into()),
                ListenAddr::Unix("/tmp/b.sock".into()),
                ListenAddr::Tcp("host:9".into()),
            ]
        );
        assert_eq!(
            parse_fleet_spec("a,,b").expect_err("empty entry"),
            "empty backend address in `a,,b`"
        );
        // Duplicate endpoints would occupy two ring slots and double
        // their keyspace share; rejected with the offending entry —
        // compared after normalization, so two spellings of one address
        // still collide.
        assert_eq!(
            parse_fleet_spec("tcp://h:1,h:1").expect_err("duplicate entry"),
            "duplicate backend address `h:1` in `tcp://h:1,h:1`"
        );
        assert_eq!(
            parse_fleet_spec("/tmp/a.sock,unix:///tmp/a.sock").expect_err("normalized duplicate"),
            "duplicate backend address `unix:///tmp/a.sock` in `/tmp/a.sock,unix:///tmp/a.sock`"
        );
    }

    #[test]
    fn fleet_flag_errors_are_exact() {
        assert_eq!(run_err(&["client", "--fleet"]), "--fleet needs a comma-separated address list");
        assert_eq!(
            run_err(&["client", "--fleet", "tcp://x", "stats"]),
            "--fleet only supports the optimize command, not `stats`"
        );
        assert_eq!(
            run_err(&["client", "--unix", "/tmp/x.sock", "--fleet", "tcp://x", "optimize", "f"]),
            "--fleet replaces --unix/--tcp; give one or the other"
        );
        assert_eq!(
            run_err(&["client", "--fleet", "tcp://x"]),
            "client requires a command (optimize|stats|metrics|ping|shutdown|hold)"
        );
        assert_eq!(
            run_err(&["client", "--fleet", "tcp://x", "--resolution", "7", "optimize", "f"]),
            "--resolution needs a number in (0, 1)"
        );
        assert_eq!(
            run_err(&["serve-batch", "/tmp", "--remote"]),
            "--remote needs a comma-separated address list"
        );
        assert_eq!(
            run_err(&["serve-batch", "/tmp", "--remote", "tcp://x", "--snapshot-out", "s"]),
            "--remote backends own their caches; drop --snapshot-in/--snapshot-out"
        );
        // --fleet-config argument errors.
        assert_eq!(run_err(&["client", "--fleet-config"]), "--fleet-config needs a file");
        assert_eq!(
            run_err(&["client", "--fleet-config", "/tmp/f.cfg", "stats"]),
            "--fleet-config only supports the optimize command, not `stats`"
        );
        assert_eq!(
            run_err(&[
                "client",
                "--fleet",
                "tcp://x",
                "--fleet-config",
                "/tmp/f.cfg",
                "optimize",
                "f"
            ]),
            "--fleet-config replaces --fleet; give one or the other"
        );
        assert_eq!(
            run_err(&["client", "--tcp", "x", "--fleet-config", "/tmp/f.cfg", "optimize", "f"]),
            "--fleet-config replaces --unix/--tcp; give one or the other"
        );
        let unreadable =
            run_err(&["client", "--fleet-config", "/nonexistent.cfg", "optimize", "f"]);
        assert!(unreadable.starts_with("fleet config unreadable:"), "{unreadable}");
        // fleet rebalance argument errors.
        assert_eq!(run_err(&["fleet"]), "fleet requires a subcommand (rebalance)");
        assert_eq!(run_err(&["fleet", "shuffle"]), "unknown fleet command `shuffle`");
        assert_eq!(run_err(&["fleet", "rebalance"]), "fleet rebalance requires --from and --to");
        assert_eq!(
            run_err(&["fleet", "rebalance", "--from", "tcp://a", "--to", "a,a"]),
            "duplicate backend address `a` in `a,a`"
        );
        assert_eq!(
            run_err(&[
                "fleet",
                "rebalance",
                "--from",
                "tcp://a",
                "--to",
                "tcp://b",
                "--vnodes",
                "0"
            ]),
            "--vnodes needs a positive integer"
        );
        assert_eq!(
            run_err(&["fleet", "rebalance", "--wat"]),
            "unknown fleet rebalance flag `--wat`"
        );
    }

    /// `client --fleet` against two live in-process daemons: requests
    /// shard deterministically, repeats hit the backends' caches, and a
    /// dead replica in the list is ridden over by failover (with the
    /// local cold fallback as the last resort).
    #[test]
    fn client_fleet_shards_and_rides_over_a_dead_backend() {
        use dsq_server::{Server, ServerConfig};
        let quick = ServerConfig {
            poll_interval: std::time::Duration::from_millis(2),
            ..ServerConfig::default()
        };
        let server_a =
            Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &quick).expect("a starts");
        let server_b =
            Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &quick).expect("b starts");
        let spec = format!("{},{}", server_a.listen_addr(), server_b.listen_addr());

        let dir = std::env::temp_dir().join(format!("dsq-fleet-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create dir");
        let mut files: Vec<String> = Vec::new();
        for seed in 0..4u64 {
            let text = run_ok(&[
                "generate",
                "--family",
                "clustered",
                "-n",
                "6",
                "--seed",
                &seed.to_string(),
            ]);
            let path = dir.join(format!("q{seed}.dsq"));
            std::fs::write(&path, text).expect("write instance");
            files.push(path.to_str().expect("utf8").to_string());
        }

        let mut args =
            vec!["client".to_string(), "--fleet".into(), spec.clone(), "optimize".into()];
        args.extend(files.iter().cloned());
        args.extend(["--repeat".to_string(), "2".into()]);
        let mut out = Vec::new();
        run(&args, &mut out).expect("fleet optimize succeeds");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains(" cold "), "first pass is cold:\n{text}");
        assert!(text.contains(" hit "), "second pass hits the backend caches:\n{text}");
        assert!(text.contains("fleet: 2 backends served 8 requests"), "{text}");
        assert!(text.contains("0 failovers, 0 local fallbacks"), "{text}");

        // Kill replica B: the same stream must still complete, riding
        // over the dead backend.
        let b_addr = server_b.listen_addr().clone();
        server_b.shutdown();
        let spec = format!("{},{b_addr}", server_a.listen_addr());
        let mut args = vec!["client".to_string(), "--fleet".into(), spec, "optimize".into()];
        args.extend(files.iter().cloned());
        let mut out = Vec::new();
        run(&args, &mut out).expect("fleet optimize survives a dead replica");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("fleet: 2 backends served 4 requests"), "{text}");
        server_a.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `client --fleet-config`: the backend list comes from a versioned
    /// fleet-config file instead of `--fleet`, served through the same
    /// consistent-hash router.
    #[test]
    fn client_fleet_config_routes_like_fleet() {
        use dsq_server::{Server, ServerConfig};
        let quick = ServerConfig {
            poll_interval: std::time::Duration::from_millis(2),
            ..ServerConfig::default()
        };
        let server_a =
            Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &quick).expect("a starts");
        let server_b =
            Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &quick).expect("b starts");
        let dir = std::env::temp_dir().join(format!("dsq-fleet-config-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create dir");
        let config_path = dir.join("fleet.cfg");
        FleetConfig::new(
            1,
            [server_a.listen_addr().to_string(), server_b.listen_addr().to_string()],
        )
        .expect("valid config")
        .store(&config_path)
        .expect("store config");

        let mut files: Vec<String> = Vec::new();
        for seed in 0..4u64 {
            let text = run_ok(&[
                "generate",
                "--family",
                "clustered",
                "-n",
                "6",
                "--seed",
                &seed.to_string(),
            ]);
            let path = dir.join(format!("q{seed}.dsq"));
            std::fs::write(&path, text).expect("write instance");
            files.push(path.to_str().expect("utf8").to_string());
        }
        let mut args = vec![
            "client".to_string(),
            "--fleet-config".into(),
            config_path.to_str().expect("utf8").to_string(),
            "optimize".into(),
        ];
        args.extend(files.iter().cloned());
        args.extend(["--repeat".to_string(), "2".into()]);
        let mut out = Vec::new();
        run(&args, &mut out).expect("fleet-config optimize succeeds");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains(" cold "), "first round is cold:\n{text}");
        assert!(text.contains(" hit "), "second round hits:\n{text}");
        assert!(text.contains("fleet: 2 backends served 8 requests"), "{text}");
        server_a.shutdown();
        server_b.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `fleet rebalance` between live daemons: grow a 2-backend fleet
    /// to 3, move the warm partitions, and confirm a fleet client over
    /// the new layout serves every key as a cache hit — the resize
    /// recomputed nothing.
    #[test]
    fn fleet_rebalance_keeps_keys_warm_across_a_grow() {
        use dsq_server::{Server, ServerConfig};
        let quick = ServerConfig {
            poll_interval: std::time::Duration::from_millis(2),
            ..ServerConfig::default()
        };
        let tcp = || ListenAddr::Tcp("127.0.0.1:0".into());
        let server_a = Server::start(&tcp(), &quick).expect("a starts");
        let server_b = Server::start(&tcp(), &quick).expect("b starts");
        let server_c = Server::start(&tcp(), &quick).expect("c starts");
        let old_spec = format!("{},{}", server_a.listen_addr(), server_b.listen_addr());
        let new_spec = format!("{old_spec},{}", server_c.listen_addr());

        let dir = std::env::temp_dir().join(format!("dsq-rebalance-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create dir");
        let mut files: Vec<String> = Vec::new();
        for seed in 0..16u64 {
            let text = run_ok(&[
                "generate",
                "--family",
                "clustered",
                "-n",
                "6",
                "--seed",
                &seed.to_string(),
            ]);
            let path = dir.join(format!("q{seed}.dsq"));
            std::fs::write(&path, text).expect("write instance");
            files.push(path.to_str().expect("utf8").to_string());
        }
        // Warm the old fleet.
        let mut args =
            vec!["client".to_string(), "--fleet".into(), old_spec.clone(), "optimize".into()];
        args.extend(files.iter().cloned());
        let mut out = Vec::new();
        run(&args, &mut out).expect("warm the old fleet");

        // Move the partitions onto the grown layout.
        let text = run_ok(&["fleet", "rebalance", "--from", &old_spec, "--to", &new_spec]);
        assert!(text.contains("rebalance complete: moved"), "{text}");
        // Exports and inheritances must balance: nothing lost in flight.
        let count_after = |needle: &str| -> u64 {
            text.lines()
                .filter_map(|l| {
                    let rest = l.split(needle).nth(1)?;
                    rest.split_whitespace().next()?.parse::<u64>().ok()
                })
                .sum()
        };
        assert_eq!(count_after(" exported "), count_after(" inherited "), "{text}");

        // A fleet client over the new layout: every key is a hit.
        let mut args = vec!["client".to_string(), "--fleet".into(), new_spec, "optimize".into()];
        args.extend(files.iter().cloned());
        let mut out = Vec::new();
        run(&args, &mut out).expect("serve over the grown fleet");
        let text = String::from_utf8(out).expect("utf8");
        let hits = text.lines().filter(|l| l.contains(" hit ")).count();
        assert_eq!(hits, 16, "every key must stay warm across the grow:\n{text}");
        assert!(text.contains("0 failovers, 0 local fallbacks"), "{text}");
        server_a.shutdown();
        server_b.shutdown();
        server_c.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `serve-batch --remote`: the batch front-end over a remote
    /// backend instead of an in-process cache.
    #[test]
    fn serve_batch_remote_serves_through_a_daemon() {
        use dsq_server::{Server, ServerConfig};
        let quick = ServerConfig {
            poll_interval: std::time::Duration::from_millis(2),
            ..ServerConfig::default()
        };
        let server = Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &quick).expect("starts");
        let dir = std::env::temp_dir().join(format!("dsq-remote-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create dir");
        for (name, seed) in [("a.dsq", 3u64), ("b.dsq", 3), ("c.dsq", 4)] {
            let text = run_ok(&[
                "generate",
                "--family",
                "clustered",
                "-n",
                "6",
                "--seed",
                &seed.to_string(),
            ]);
            std::fs::write(dir.join(name), text).expect("write instance");
        }
        let out = run_ok(&[
            "serve-batch",
            dir.to_str().expect("utf8"),
            "--workers",
            "1",
            "--remote",
            &server.listen_addr().to_string(),
        ]);
        for needle in ["a.dsq", "b.dsq", "c.dsq", "served 3 requests"] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
        assert!(out.contains("fleet: 1 backends served 3 requests (3), 0 failovers"), "{out}");
        // The duplicate shape hit the daemon's cache, not a local one.
        let stats = server.shutdown();
        assert_eq!(stats.cache.requests(), 3);
        assert_eq!(stats.cache.hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `serve-batch --snapshot-out` refuses a path another live process
    /// (here: this one) holds the lock for.
    #[test]
    fn serve_batch_refuses_a_locked_snapshot_path() {
        let dir = std::env::temp_dir().join(format!("dsq-lockout-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create dir");
        let text = run_ok(&["generate", "--family", "clustered", "-n", "5", "--seed", "1"]);
        std::fs::write(dir.join("q.dsq"), text).expect("write instance");
        let snapshot = dir.join("plans.dsqc");
        let _held = SnapshotLock::acquire(&snapshot).expect("this process takes the lock");
        let message = run_err(&[
            "serve-batch",
            dir.to_str().expect("utf8"),
            "--snapshot-out",
            snapshot.to_str().expect("utf8"),
        ]);
        assert!(message.contains("locked by live process"), "{message}");
        drop(_held);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The observability verbs against a live daemon: `client metrics`
    /// streams the exposition document, `client hold` prints the
    /// held/dropped drain accounting, and `loadgen` reports per-class
    /// tails with zero protocol errors.
    #[test]
    fn client_metrics_hold_and_loadgen_against_a_live_daemon() {
        use dsq_server::{Server, ServerConfig};
        let quick = ServerConfig {
            poll_interval: std::time::Duration::from_millis(2),
            ..ServerConfig::default()
        };
        let server = Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &quick).expect("starts");
        let addr = server.listen_addr().to_string();

        let held = run_ok(&["client", "--tcp", trim_tcp(&addr), "hold", "8"]);
        assert!(held.contains("held 8 concurrent connections"), "{held}");
        assert!(held.contains("drained 8 held connections: 8 live, 0 dropped"), "{held}");

        let loadgen = run_ok(&[
            "loadgen",
            "--tcp",
            trim_tcp(&addr),
            "--rate",
            "2000",
            "--requests",
            "25",
            "-n",
            "6",
            "--classes",
            "drift,pipelined",
        ]);
        assert!(loadgen.contains("drift: 25 sent"), "{loadgen}");
        assert!(loadgen.contains("pipelined: 25 sent"), "{loadgen}");
        assert!(loadgen.contains("total: 50 requests"), "{loadgen}");
        assert!(loadgen.contains("(0 protocol errors)"), "{loadgen}");
        let json = run_ok(&[
            "loadgen",
            "--tcp",
            trim_tcp(&addr),
            "--rate",
            "2000",
            "--requests",
            "10",
            "--classes",
            "boundary",
            "--json",
        ]);
        assert!(json.contains("\"schema\": \"dsq-loadgen/v1\""), "{json}");
        assert!(json.contains("\"class\": \"boundary\""), "{json}");

        let metrics = run_ok(&["client", "--tcp", trim_tcp(&addr), "metrics"]);
        assert!(metrics.starts_with("# dsq-metrics v1\n"), "{metrics}");
        assert!(metrics.contains("histogram server.stage.plan_ns "), "{metrics}");
        assert!(metrics.contains("counter server.serve.requests "), "{metrics}");
        server.shutdown();
    }

    /// `ListenAddr::Tcp` displays as `tcp://HOST:PORT`; the CLI's --tcp
    /// flag takes the bare `HOST:PORT`.
    fn trim_tcp(display: &str) -> &str {
        display.strip_prefix("tcp://").unwrap_or(display)
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_ok(&["--help"]).contains("usage:"));
        let mut out = Vec::new();
        run(&[], &mut out).expect("no-arg run prints usage");
        assert!(String::from_utf8(out).expect("utf8").contains("usage:"));
    }
}
