//! The `dsq` binary: see [`dsq_cli`] for the command surface.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    match dsq_cli::run(&args, &mut stdout.lock()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dsq: {message}");
            ExitCode::FAILURE
        }
    }
}
