//! Shared helpers for the Criterion benchmarks (see `benches/`).
//!
//! Each benchmark file regenerates the timing series of one experiment
//! family from DESIGN.md §5: `cost_eval` (micro-costs of Eq. 1),
//! `optimizer_scaling` (E2), `pruning_ablation` (E3), `heuristics` (E4's
//! timing side), `simulator` (E5/E10), `runtime_pipeline` (E8), and
//! `service_throughput` (E13's serving-layer costs).

#![warn(missing_docs)]

use dsq_workloads::{generate, Family};

/// A deterministic instance of the given family and size (fixed seed so
/// benchmark numbers are comparable across runs).
pub fn bench_instance(family: Family, n: usize) -> dsq_core::QueryInstance {
    generate(family, n, 0xBEEF)
}

/// Criterion settings shared by all benches: small sample counts so the
/// full suite stays in the minutes range.
#[macro_export]
macro_rules! quick_criterion {
    () => {
        criterion::Criterion::default()
            .sample_size(10)
            .warm_up_time(std::time::Duration::from_millis(300))
            .measurement_time(std::time::Duration::from_millis(1500))
    };
}
