//! Micro-benchmarks of the Eq. 1 cost evaluation — the inner loop of
//! every optimizer and heuristic in the workspace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsq_bench::bench_instance;
use dsq_core::{bottleneck_cost, cost_terms, Plan};
use dsq_workloads::Family;
use std::hint::black_box;

fn bench_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_eval");
    for n in [10usize, 50, 200] {
        let inst = bench_instance(Family::UniformRandom, n);
        let plan = Plan::identity(n);
        group.bench_with_input(BenchmarkId::new("bottleneck_cost", n), &n, |b, _| {
            b.iter(|| black_box(bottleneck_cost(black_box(&inst), black_box(&plan))))
        });
        group.bench_with_input(BenchmarkId::new("cost_terms", n), &n, |b, _| {
            b.iter(|| black_box(cost_terms(black_box(&inst), black_box(&plan))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = dsq_bench::quick_criterion!();
    targets = bench_cost
}
criterion_main!(benches);
