//! E13's timing series: the serving layer's request costs — fingerprint
//! computation, validated cache hits, cold optimization, and whole
//! drifting-stream batches — at the production-relevant n = 12.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsq_core::{optimize_with, BnbConfig, CanonicalKey, Quantization};
use dsq_service::{optimize_batch, BatchOptions, CacheConfig, PlanCache};
use dsq_workloads::{DriftConfig, DriftStream, Family};
use std::hint::black_box;
use std::num::NonZeroUsize;

const N: usize = 12;

fn cache_config() -> CacheConfig {
    // Same knobs as experiment E13.
    CacheConfig { quantization: Quantization::new(0.2), ..CacheConfig::default() }
}

fn stream(family: Family, requests: usize) -> Vec<dsq_core::QueryInstance> {
    DriftStream::new(DriftConfig::new(family, N, 23, requests)).collect()
}

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    let requests = stream(Family::BtspHard, 48);
    let config = BnbConfig::paper();

    group.bench_with_input(BenchmarkId::new("fingerprint", N), &requests[0], |b, inst| {
        let quantization = Quantization::new(0.2);
        b.iter(|| black_box(CanonicalKey::new(black_box(inst), &quantization)))
    });

    group.bench_with_input(
        BenchmarkId::new("cold_optimize", format!("btsp-n{N}")),
        &requests[0],
        |b, inst| b.iter(|| black_box(optimize_with(black_box(inst), &config))),
    );

    // Validated hit path: fingerprint + transport + exact-cost check,
    // cycling through drifted occurrences of the warmed base queries.
    let cache = PlanCache::new(cache_config());
    for inst in &requests {
        cache.serve(inst, &config);
    }
    let mut next = 0usize;
    group.bench_function(BenchmarkId::new("cache_hit", format!("btsp-n{N}")), |b| {
        b.iter(|| {
            let inst = &requests[next % requests.len()];
            next += 1;
            black_box(cache.serve(black_box(inst), &config))
        })
    });

    // Whole-batch throughput, cold caches each iteration: the number the
    // serving layer quotes (requests per second including the misses).
    for workers in [1usize, 4] {
        let options = BatchOptions {
            workers: NonZeroUsize::new(workers).expect("non-zero"),
            config: config.clone(),
        };
        group.throughput(Throughput::Elements(requests.len() as u64));
        group.bench_function(BenchmarkId::new("batch_stream", format!("w{workers}")), |b| {
            b.iter(|| {
                let cache = PlanCache::new(cache_config());
                black_box(optimize_batch(&cache, black_box(&requests), &options))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = dsq_bench::quick_criterion!();
    targets = bench_serving
}
criterion_main!(benches);
