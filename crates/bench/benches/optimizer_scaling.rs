//! E2's timing series: branch-and-bound vs subset DP vs exhaustive
//! search as the instance grows, on an easy family (uniform-random) and
//! on the bottleneck-TSP hard core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsq_baselines::{exhaustive_with_limit, subset_dp};
use dsq_bench::bench_instance;
use dsq_core::optimize;
use dsq_workloads::Family;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_scaling");
    for family in [Family::UniformRandom, Family::BtspHard] {
        for n in [8usize, 10, 12, 14] {
            let inst = bench_instance(family, n);
            let label = format!("{}-n{}", family.name(), n);
            group.bench_with_input(BenchmarkId::new("bnb", &label), &n, |b, _| {
                b.iter(|| black_box(optimize(black_box(&inst))))
            });
            group.bench_with_input(BenchmarkId::new("subset_dp", &label), &n, |b, _| {
                b.iter(|| black_box(subset_dp(black_box(&inst)).expect("within limit")))
            });
            if n <= 9 {
                group.bench_with_input(BenchmarkId::new("exhaustive", &label), &n, |b, _| {
                    b.iter(|| {
                        black_box(exhaustive_with_limit(black_box(&inst), 9).expect("within limit"))
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = dsq_bench::quick_criterion!();
    targets = bench_scaling
}
criterion_main!(benches);
