//! E14's timing series: what the socket path costs on top of the
//! in-process serving layer — protocol framing + syscalls per request
//! (`ping`), a validated cache hit through the daemon vs the same hit as
//! a direct `PlanCache::serve` call, and whole warmed-stream throughput
//! through one connection vs `optimize_batch`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsq_core::{BnbConfig, Quantization};
use dsq_server::{Client, ListenAddr, Response, Server, ServerConfig};
use dsq_service::{optimize_batch, BatchOptions, CacheConfig, PlanCache};
use dsq_workloads::{DriftConfig, DriftStream, Family};
use std::hint::black_box;
use std::num::NonZeroUsize;
use std::time::Duration;

const N: usize = 12;

fn cache_config() -> CacheConfig {
    // Same knobs as experiments E13/E14.
    CacheConfig { quantization: Quantization::new(0.2), probes: 2, ..CacheConfig::default() }
}

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_roundtrip");
    let requests: Vec<dsq_core::QueryInstance> =
        DriftStream::new(DriftConfig::new(Family::BtspHard, N, 23, 48)).collect();
    let documents: Vec<String> = requests.iter().map(dsq_core::format_instance).collect();

    // One daemon for the whole suite, one worker (single-core hosts
    // measure oversubscription, not speedup, beyond that), pre-warmed so
    // the socket numbers isolate transport + protocol cost over hits.
    let server = Server::start(
        &ListenAddr::Tcp("127.0.0.1:0".into()),
        &ServerConfig {
            workers: NonZeroUsize::new(1).expect("non-zero"),
            cache: cache_config(),
            poll_interval: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    )
    .expect("bench server starts");
    let mut client = Client::connect(server.listen_addr()).expect("bench client connects");
    for document in &documents {
        client.optimize_text(document).expect("warmup request");
    }

    // Protocol floor: framing + two syscalls, no optimizer work at all.
    group.bench_function(BenchmarkId::new("socket_ping", N), |b| {
        b.iter(|| black_box(client.ping().expect("ping")))
    });

    // A validated cache hit through the daemon…
    let mut next = 0usize;
    group.bench_function(BenchmarkId::new("socket_hit", format!("btsp-n{N}")), |b| {
        b.iter(|| {
            let document = &documents[next % documents.len()];
            next += 1;
            black_box(client.optimize_text(black_box(document)).expect("hit round trip"))
        })
    });

    // …vs the identical hit as a direct library call (the delta is the
    // per-request cost of being a network service).
    let cache = PlanCache::new(cache_config());
    let config = BnbConfig::paper();
    for inst in &requests {
        cache.serve(inst, &config);
    }
    let mut next = 0usize;
    group.bench_function(BenchmarkId::new("inprocess_hit", format!("btsp-n{N}")), |b| {
        b.iter(|| {
            let inst = &requests[next % requests.len()];
            next += 1;
            black_box(cache.serve(black_box(inst), &config))
        })
    });

    // Whole warmed-stream throughput, socket vs in-process batch.
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.bench_function(BenchmarkId::new("stream_socket", "w1"), |b| {
        b.iter(|| {
            for document in &documents {
                match client.optimize_text(document).expect("stream request") {
                    Response::Served { .. } => {}
                    other => panic!("expected served, got {other:?}"),
                }
            }
        })
    });
    let options =
        BatchOptions { workers: NonZeroUsize::new(1).expect("non-zero"), config: config.clone() };
    group.bench_function(BenchmarkId::new("stream_inprocess", "w1"), |b| {
        b.iter(|| black_box(optimize_batch(&cache, black_box(&requests), &options)))
    });

    // The same warmed stream as one pipelined frame: every document goes
    // out in a single write and the responses come back in request
    // order — the per-request framing/syscall amortization the reactor
    // core exists for, to be read against `stream_socket` above.
    group.bench_function(BenchmarkId::new("pipelined_stream", "w1"), |b| {
        b.iter(|| {
            let responses = client.optimize_pipelined(&requests).expect("pipelined stream");
            for response in &responses {
                match response {
                    Response::Served { .. } => {}
                    other => panic!("expected served, got {other:?}"),
                }
            }
            black_box(responses)
        })
    });

    group.finish();
    drop(client);
    server.shutdown();
}

criterion_group! {
    name = benches;
    config = dsq_bench::quick_criterion!();
    targets = bench_server
}
criterion_main!(benches);
