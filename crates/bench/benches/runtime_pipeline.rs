//! Threaded pipeline end-to-end timing (the benchmark companion of E8).
//! Kept deliberately small: each iteration spawns the full thread
//! topology and pushes real tuples through it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsq_bench::bench_instance;
use dsq_core::optimize;
use dsq_runtime::{run_pipeline, RuntimeConfig};
use dsq_workloads::Family;
use std::hint::black_box;

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_pipeline");
    let tuples = 200u64;
    group.throughput(Throughput::Elements(tuples));
    for n in [2usize, 4, 6] {
        let inst = bench_instance(Family::UniformRandom, n);
        let plan = optimize(&inst).into_plan();
        group.bench_with_input(BenchmarkId::new("threads", n), &n, |b, _| {
            // Tiny time scale: the benchmark measures framework overhead
            // (threads, channels, batching), not the injected busy-work.
            let cfg = RuntimeConfig { tuples, time_scale_us: 0.1, ..RuntimeConfig::default() };
            b.iter(|| black_box(run_pipeline(black_box(&inst), black_box(&plan), &cfg)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = dsq_bench::quick_criterion!();
    targets = bench_runtime
}
criterion_main!(benches);
