//! E16's timing series: what a tier-1 answer costs against the cold
//! exact search it replaces — the greedy heuristic alone, the full
//! tiered miss path (fingerprint, probe, greedy, heuristic write-back),
//! and the background refinement search warm-started from the greedy
//! incumbent — all at the production-relevant n = 12 on btsp-hard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsq_baselines::fast_greedy;
use dsq_core::{optimize_with, BnbConfig, QueryInstance};
use dsq_service::{CacheConfig, PlanCache, PlanTier, Planner, TieredConfig, TieredPlanner};
use dsq_workloads::{generate, Family};
use std::hint::black_box;
use std::num::NonZeroUsize;
use std::sync::Arc;

const N: usize = 12;
/// Distinct instances per tier-1 batch: every request is a genuine miss.
const MISSES: usize = 64;

/// Refinement disabled (queue capacity 0 drops every job) so the miss
/// path is measured without a background worker contending for the
/// single core.
fn latency_only() -> TieredConfig {
    TieredConfig { refine_workers: NonZeroUsize::new(1).expect("non-zero"), queue_capacity: 0 }
}

fn bench_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("tier_latency");
    let config = BnbConfig::paper();
    let instances: Vec<QueryInstance> =
        (0..MISSES as u64).map(|s| generate(Family::BtspHard, N, 700 + s)).collect();

    // Tier 1 in isolation: the greedy construction alone.
    group.bench_with_input(
        BenchmarkId::new("greedy", format!("btsp-n{N}")),
        &instances[0],
        |b, inst| b.iter(|| black_box(fast_greedy(black_box(inst)))),
    );

    // What the miss would have paid in line without the tier.
    group.bench_with_input(
        BenchmarkId::new("cold_exact", format!("btsp-n{N}")),
        &instances[0],
        |b, inst| b.iter(|| black_box(optimize_with(black_box(inst), &config))),
    );

    // The background refinement search: exact, warm-started from the
    // greedy incumbent the miss was answered with.
    let incumbent = fast_greedy(&instances[0]);
    group.bench_with_input(
        BenchmarkId::new("refine_warm", format!("btsp-n{N}")),
        &instances[0],
        |b, inst| {
            b.iter(|| {
                let warm = config.clone().with_initial_incumbent(incumbent.plan().clone());
                black_box(optimize_with(black_box(inst), &warm))
            })
        },
    );

    // The full tier-1 miss path: per-element cost is the latency a
    // cache miss is answered at. A fresh planner per iteration keeps
    // every request a genuine miss; its construction and teardown (one
    // worker thread) amortize to well under a microsecond per element.
    let probe = TieredPlanner::with_config(
        Arc::new(PlanCache::new(CacheConfig::default())),
        config.clone(),
        latency_only(),
    );
    for inst in &instances {
        let served = probe.plan(inst).expect("tiered planners are infallible");
        assert_eq!(served.tier, PlanTier::Heuristic, "every pool instance is a distinct miss");
    }
    drop(probe);
    group.throughput(Throughput::Elements(MISSES as u64));
    group.bench_function(
        BenchmarkId::new("tier1_miss_stream", format!("btsp-n{N}x{MISSES}")),
        |b| {
            b.iter(|| {
                let planner = TieredPlanner::with_config(
                    Arc::new(PlanCache::new(CacheConfig::default())),
                    config.clone(),
                    latency_only(),
                );
                for inst in &instances {
                    black_box(planner.plan(black_box(inst)).expect("miss round trip"));
                }
            })
        },
    );

    group.finish();
}

criterion_group! {
    name = benches;
    config = dsq_bench::quick_criterion!();
    targets = bench_tiers
}
criterion_main!(benches);
