//! Discrete-event engine throughput (events are the currency of E5/E10):
//! how fast the simulator pushes tuples through pipelines of varying
//! depth and block size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsq_bench::bench_instance;
use dsq_core::{optimize, Plan};
use dsq_simulator::{simulate, SimConfig};
use dsq_workloads::Family;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let tuples = 5_000u64;
    group.throughput(Throughput::Elements(tuples));
    for n in [4usize, 8, 12] {
        let inst = bench_instance(Family::Clustered, n);
        let plan = optimize(&inst).into_plan();
        group.bench_with_input(BenchmarkId::new("pipeline_depth", n), &n, |b, _| {
            let cfg = SimConfig { tuples, ..SimConfig::default() };
            b.iter(|| black_box(simulate(black_box(&inst), black_box(&plan), &cfg)))
        });
    }
    let inst = bench_instance(Family::Clustered, 6);
    let plan = Plan::identity(6);
    for block in [1u64, 32, 256] {
        group.bench_with_input(BenchmarkId::new("block_size", block), &block, |b, _| {
            let cfg = SimConfig { tuples, block_size: block, ..SimConfig::default() };
            b.iter(|| black_box(simulate(black_box(&inst), black_box(&plan), &cfg)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = dsq_bench::quick_criterion!();
    targets = bench_simulator
}
criterion_main!(benches);
