//! E3's timing series: how much wall-clock each pruning lemma buys on the
//! bottleneck-TSP hard core, where the search actually works for its
//! answer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsq_bench::bench_instance;
use dsq_core::{optimize_with, BnbConfig};
use dsq_workloads::Family;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning_ablation");
    let configs: [(&str, BnbConfig); 5] = [
        ("incumbent-only", BnbConfig::incumbent_only()),
        ("no-backjump", BnbConfig::without_backjump()),
        ("no-epsilon-bar", BnbConfig::without_epsilon_bar()),
        ("paper", BnbConfig::paper()),
        ("extended", BnbConfig::extended()),
    ];
    for n in [10usize, 12] {
        let inst = bench_instance(Family::BtspHard, n);
        for (name, cfg) in &configs {
            group.bench_with_input(BenchmarkId::new(*name, format!("btsp-n{n}")), &n, |b, _| {
                b.iter(|| black_box(optimize_with(black_box(&inst), cfg)))
            });
        }
    }
    // Larger hard instances only for the configurations whose per-node
    // work is dominated by the tight ε̄ evaluation — the hot path the
    // incremental bound engine targets. The weak ablations would take
    // minutes here without telling us anything new.
    for n in [14usize, 16] {
        let inst = bench_instance(Family::BtspHard, n);
        for (name, cfg) in &configs {
            if !cfg.use_epsilon_bar || !cfg.tight_epsilon_bar {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(*name, format!("btsp-n{n}")), &n, |b, _| {
                b.iter(|| black_box(optimize_with(black_box(&inst), cfg)))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = dsq_bench::quick_criterion!();
    targets = bench_ablation
}
criterion_main!(benches);
