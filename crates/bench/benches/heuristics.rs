//! Heuristic construction and improvement at sizes beyond exact reach
//! (the timing companion of E4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsq_baselines::{
    best_greedy, local_search, random_sampling, simulated_annealing, AnnealingConfig,
    LocalSearchConfig,
};
use dsq_bench::bench_instance;
use dsq_workloads::Family;
use std::hint::black_box;

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristics");
    for n in [20usize, 40] {
        let inst = bench_instance(Family::Clustered, n);
        let label = format!("n{n}");
        group.bench_with_input(BenchmarkId::new("greedy_best", &label), &n, |b, _| {
            b.iter(|| black_box(best_greedy(black_box(&inst))))
        });
        group.bench_with_input(BenchmarkId::new("local_search_1restart", &label), &n, |b, _| {
            let cfg = LocalSearchConfig { restarts: 1, ..Default::default() };
            b.iter(|| black_box(local_search(black_box(&inst), &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("annealing_5k", &label), &n, |b, _| {
            let cfg = AnnealingConfig { steps: 5_000, ..Default::default() };
            b.iter(|| black_box(simulated_annealing(black_box(&inst), &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("random_100", &label), &n, |b, _| {
            b.iter(|| black_box(random_sampling(black_box(&inst), 100, 0)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = dsq_bench::quick_criterion!();
    targets = bench_heuristics
}
criterion_main!(benches);
