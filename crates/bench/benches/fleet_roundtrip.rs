//! E15's timing series: what fingerprint routing costs on top of a
//! single daemon — a warmed hit through the 2-server fleet vs the same
//! hit through one `RemotePlanner`, and whole warmed-stream throughput
//! through the fleet router (failover machinery engaged but idle).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsq_core::{Quantization, QueryInstance};
use dsq_server::{ListenAddr, RemotePlanner, Server, ServerConfig};
use dsq_service::{CacheConfig, FleetPlanner, Planner};
use dsq_workloads::{DriftConfig, DriftStream, Family};
use std::hint::black_box;
use std::num::NonZeroUsize;
use std::time::Duration;

const N: usize = 12;

fn server_config() -> ServerConfig {
    ServerConfig {
        workers: NonZeroUsize::new(1).expect("non-zero"), // single-core hosts
        cache: CacheConfig {
            quantization: Quantization::new(0.2), // the e13/e14/e15 serving knobs
            probes: 2,
            ..CacheConfig::default()
        },
        poll_interval: Duration::from_millis(1),
        ..ServerConfig::default()
    }
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_roundtrip");
    let requests: Vec<QueryInstance> =
        DriftStream::new(DriftConfig::new(Family::BtspHard, N, 23, 48)).collect();

    let server_a =
        Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &server_config()).expect("a starts");
    let server_b =
        Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &server_config()).expect("b starts");

    // The single-backend reference: one RemotePlanner, pre-warmed.
    let single = RemotePlanner::new(server_a.listen_addr().clone());
    for inst in &requests {
        single.plan(inst).expect("warmup request");
    }
    let mut next = 0usize;
    group.bench_function(BenchmarkId::new("single_hit", format!("btsp-n{N}")), |b| {
        b.iter(|| {
            let inst = &requests[next % requests.len()];
            next += 1;
            black_box(single.plan(black_box(inst)).expect("hit round trip"))
        })
    });

    // The fleet: routing + the same socket hit on whichever backend the
    // fingerprint picks (server A is already warm; warm B too).
    let backends: Vec<Box<dyn Planner>> = vec![
        Box::new(RemotePlanner::new(server_a.listen_addr().clone())),
        Box::new(RemotePlanner::new(server_b.listen_addr().clone())),
    ];
    let fleet =
        FleetPlanner::new(backends, Quantization::new(0.2)).expect("two backends were just built");
    for inst in &requests {
        fleet.plan(inst).expect("warmup request");
    }
    let mut next = 0usize;
    group.bench_function(BenchmarkId::new("fleet_hit", format!("btsp-n{N}")), |b| {
        b.iter(|| {
            let inst = &requests[next % requests.len()];
            next += 1;
            black_box(fleet.plan(black_box(inst)).expect("hit round trip"))
        })
    });

    // Routing alone: the canonicalization + fingerprint the router adds
    // in front of every request.
    let mut next = 0usize;
    group.bench_function(BenchmarkId::new("route_only", format!("btsp-n{N}")), |b| {
        b.iter(|| {
            let inst = &requests[next % requests.len()];
            next += 1;
            black_box(fleet.route(black_box(inst)))
        })
    });

    // Whole warmed-stream throughput through the router.
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.bench_function(BenchmarkId::new("stream_fleet", "w1"), |b| {
        b.iter(|| {
            for inst in &requests {
                black_box(fleet.plan(inst).expect("stream request"));
            }
        })
    });

    group.finish();
    drop(single);
    drop(fleet);
    server_a.shutdown();
    server_b.shutdown();
}

criterion_group! {
    name = benches;
    config = dsq_bench::quick_criterion!();
    targets = bench_fleet
}
criterion_main!(benches);
