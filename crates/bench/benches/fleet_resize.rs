//! The resize path's timing series: consistent-hash ring construction
//! and lookup, the in-memory partition export/restore machinery, and a
//! full warm partition handoff between two live daemons over sockets —
//! the per-entry cost of moving a keyspace arc during `fleet rebalance`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsq_core::{BnbConfig, Quantization, QueryInstance};
use dsq_server::{Client, ExportRequest, ListenAddr, Server, ServerConfig};
use dsq_service::{CacheConfig, HashRing, PlanCache, DEFAULT_VNODES};
use dsq_workloads::{generate, Family};
use std::hint::black_box;
use std::num::NonZeroUsize;
use std::time::Duration;

const N: usize = 9;
const KEYS: u64 = 32;

fn cache_config() -> CacheConfig {
    CacheConfig {
        quantization: Quantization::new(0.2), // the e13/e14/e15 serving knobs
        probes: 1,
        ..CacheConfig::default()
    }
}

fn working_set() -> Vec<QueryInstance> {
    (0..KEYS).map(|seed| generate(Family::Clustered, N, 700 + seed)).collect()
}

/// Exports everything: `keep == backends.len()` names no slot (the
/// drain form a leaving backend is served), so the whole cache moves on
/// every ping-pong leg and each iteration does identical work.
fn drain_request() -> ExportRequest {
    ExportRequest { vnodes: DEFAULT_VNODES, keep: 1, backends: vec!["solo".to_string()] }
}

fn bench_resize(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_resize");

    // Ring construction: what a membership cutover pays to rebuild the
    // routing table.
    for backends in [2usize, 3, 8] {
        let labels: Vec<String> = (0..backends).map(|i| format!("remote(backend-{i})")).collect();
        group.bench_function(
            BenchmarkId::new("ring_build", format!("{backends}x{DEFAULT_VNODES}")),
            |b| b.iter(|| black_box(HashRing::with_vnodes(black_box(&labels), DEFAULT_VNODES))),
        );
    }

    // Ring lookup: the per-request routing cost once the fingerprint is
    // known (the canonicalization in front of it is benched in
    // fleet_roundtrip's route_only).
    let labels: Vec<String> = (0..3).map(|i| format!("remote(backend-{i})")).collect();
    let ring = HashRing::new(&labels);
    let mut fp = 0u64;
    group.bench_function(BenchmarkId::new("ring_route", format!("3x{DEFAULT_VNODES}")), |b| {
        b.iter(|| {
            fp = fp.wrapping_add(0x9e37_79b9_7f4a_7c15);
            black_box(ring.route(black_box(fp)))
        })
    });

    // In-memory partition machinery: export_partition + restore,
    // ping-ponging a warmed cache between two instances so every
    // iteration moves the same full entry set.
    let keys = working_set();
    let cache_a = PlanCache::new(cache_config());
    let cache_b = PlanCache::new(cache_config());
    for inst in &keys {
        cache_a.serve(inst, &BnbConfig::paper());
    }
    let entries = cache_a.snapshot().entries.len() as u64;
    assert!(entries > 0, "the warm cache must hold entries to move");
    group.throughput(Throughput::Elements(entries));
    let mut from_a = true;
    group.bench_function(BenchmarkId::new("export_restore", format!("{entries}e")), |b| {
        b.iter(|| {
            let (src, dst) = if from_a { (&cache_a, &cache_b) } else { (&cache_b, &cache_a) };
            from_a = !from_a;
            let partition = src.export_partition(|_| true);
            assert_eq!(partition.entries.len() as u64, entries, "the full set moves each leg");
            black_box(dst.restore(&partition).expect("partition restores"))
        })
    });

    // The full socket handoff: export-partition on one daemon, the
    // snapshot streamed back, import-partition into the other — what
    // `fleet rebalance` pays per moved arc, ping-ponged likewise.
    let server_config = ServerConfig {
        workers: NonZeroUsize::new(1).expect("non-zero"), // single-core hosts
        cache: cache_config(),
        poll_interval: Duration::from_millis(1),
        ..ServerConfig::default()
    };
    let server_a =
        Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &server_config).expect("a starts");
    let server_b =
        Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &server_config).expect("b starts");
    let mut client_a = Client::connect(server_a.listen_addr()).expect("connect a");
    let mut client_b = Client::connect(server_b.listen_addr()).expect("connect b");
    for inst in &keys {
        client_a.optimize(inst).expect("warm daemon a");
    }
    let request = drain_request();
    let partition = client_a.export_partition(&request).expect("initial export");
    let moved = partition.entries.len() as u64;
    assert!(moved > 0, "the warm daemon must hold entries to move");
    client_b.import_partition(&partition).expect("initial import");
    let mut holder_is_b = true;
    group.throughput(Throughput::Elements(moved));
    group.bench_function(BenchmarkId::new("handoff_socket", format!("{moved}e")), |b| {
        b.iter(|| {
            let (src, dst) = if holder_is_b {
                (&mut client_b, &mut client_a)
            } else {
                (&mut client_a, &mut client_b)
            };
            holder_is_b = !holder_is_b;
            let partition = src.export_partition(&request).expect("export leg");
            assert_eq!(partition.entries.len() as u64, moved, "the full set moves each leg");
            black_box(dst.import_partition(&partition).expect("import leg"))
        })
    });

    group.finish();
    drop(client_a);
    drop(client_b);
    server_a.shutdown();
    server_b.shutdown();
}

criterion_group! {
    name = benches;
    config = dsq_bench::quick_criterion!();
    targets = bench_resize
}
criterion_main!(benches);
