//! Micro-costs of the vendored epoll reactor (`vendor/reactor`): the
//! cross-thread wakeup roundtrip workers pay per completion batch, the
//! register/deregister churn per accepted connection, and how a poll
//! scales when a thousand idle sockets are registered — the floor under
//! the daemon's "thousands of connections on one thread" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reactor::{Events, Interest, Poll, Token, Waker};
use std::hint::black_box;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

fn bench_reactor(c: &mut Criterion) {
    let mut group = c.benchmark_group("reactor");

    // One wake → poll → drain cycle: the path every worker completion
    // takes to reach the reactor.
    let poll = Poll::new().expect("poll");
    let waker = Waker::new(&poll, Token(1)).expect("waker");
    let mut events = Events::with_capacity(64);
    group.bench_function(BenchmarkId::new("waker_roundtrip", 1), |b| {
        b.iter(|| {
            waker.wake();
            poll.poll(&mut events, Some(Duration::from_millis(10))).expect("poll");
            black_box(waker.drain())
        })
    });

    // Register + deregister one socket: the per-connection setup and
    // teardown cost on the accept path.
    let (socket, _peer) = UnixStream::pair().expect("socket pair");
    let fd = socket.as_raw_fd();
    group.bench_function(BenchmarkId::new("register_deregister", 1), |b| {
        b.iter(|| {
            poll.register(fd, Token(7), Interest::READABLE).expect("register");
            poll.deregister(fd).expect("deregister");
        })
    });

    // A poll over a thousand registered-but-idle sockets: epoll charges
    // for ready events, not registered fds, so this must stay flat.
    let crowd_poll = Poll::new().expect("poll");
    let crowd: Vec<(UnixStream, UnixStream)> =
        (0..1000).map(|_| UnixStream::pair().expect("socket pair")).collect();
    for (index, (held, _peer)) in crowd.iter().enumerate() {
        crowd_poll
            .register(held.as_raw_fd(), Token(index + 2), Interest::READABLE)
            .expect("register idle socket");
    }
    let mut crowd_events = Events::with_capacity(1024);
    group.bench_function(BenchmarkId::new("poll_1k_idle", 1000), |b| {
        b.iter(|| {
            crowd_poll.poll(&mut crowd_events, Some(Duration::ZERO)).expect("poll idle crowd");
            assert!(crowd_events.is_empty(), "idle sockets must report nothing");
            black_box(crowd_events.len())
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = dsq_bench::quick_criterion!();
    targets = bench_reactor
}
criterion_main!(benches);
