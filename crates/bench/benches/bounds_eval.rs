//! Micro-benchmarks of the per-node bound evaluations — the hot path of
//! the branch-and-bound search. Measures tight and loose `ε̄`, the
//! optimistic completion lower bound, and the incremental push/pop
//! maintenance itself, against the shared [`SearchContext`].
//!
//! [`SearchContext`]: dsq_core::bnb::SearchContext

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsq_bench::bench_instance;
use dsq_core::bnb::{IncrementalBounds, SearchContext};
use dsq_workloads::Family;
use std::hint::black_box;

/// A mid-search position: the first half of the services placed in index
/// order, mirroring a depth-`n/2` node of the search tree.
fn half_placed(ctx: &SearchContext) -> (IncrementalBounds, usize, f64) {
    let n = ctx.len();
    let mut state = IncrementalBounds::new(ctx);
    let mut prefix_last = 1.0;
    for j in 0..n / 2 {
        if j > 0 {
            prefix_last *= ctx.selectivity(j - 1);
        }
        state.push(ctx, j);
    }
    (state, n / 2 - 1, prefix_last)
}

fn bench_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounds_eval");
    for n in [8usize, 16, 32] {
        let inst = bench_instance(Family::UniformRandom, n);
        let ctx = SearchContext::new(&inst);
        let (state, last, prefix_last) = half_placed(&ctx);

        group.bench_with_input(BenchmarkId::new("tight_epsilon_bar", n), &n, |b, _| {
            b.iter(|| black_box(ctx.epsilon_bar(black_box(&state), last, prefix_last, true)))
        });
        group.bench_with_input(BenchmarkId::new("loose_epsilon_bar", n), &n, |b, _| {
            b.iter(|| black_box(ctx.epsilon_bar(black_box(&state), last, prefix_last, false)))
        });
        group.bench_with_input(BenchmarkId::new("completion_lower_bound", n), &n, |b, _| {
            b.iter(|| black_box(ctx.completion_lower_bound(black_box(&state), last, prefix_last)))
        });
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, _| {
            let mut walker = state.clone();
            // Toggle the last unplaced service in and out: one O(1)
            // product update plus two bit flips per direction.
            let j = n - 1;
            b.iter(|| {
                walker.push(&ctx, black_box(j));
                walker.pop(black_box(j));
            })
        });
        group.bench_with_input(BenchmarkId::new("context_build", n), &n, |b, _| {
            b.iter(|| black_box(SearchContext::new(black_box(&inst))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = dsq_bench::quick_criterion!();
    targets = bench_bounds
}
criterion_main!(benches);
