//! Experiment registry and execution.

use crate::table::Table;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// Shared knobs of an experiment run. Passive struct; fields are public.
#[derive(Debug, Clone, Default)]
pub struct ExperimentContext {
    /// Shrinks sizes and seed counts for CI-speed runs.
    pub quick: bool,
    /// Where to write `<id>.md` / `<id>.csv` artifacts (skipped if
    /// `None`).
    pub out_dir: Option<PathBuf>,
}

impl ExperimentContext {
    /// Picks `full` or `quick` depending on the context.
    pub fn size<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// One reproducible experiment: an id (used in file names and the CLI), a
/// title, the claim of the paper it exercises, and a runner producing
/// tables.
pub struct Experiment {
    /// Stable identifier (`e1` … `e10`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// The sentence of the paper this experiment checks.
    pub claim: &'static str,
    /// Produces the experiment's tables.
    pub run: fn(&ExperimentContext) -> Vec<Table>,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("id", &self.id)
            .field("title", &self.title)
            .finish_non_exhaustive()
    }
}

/// All experiments, in report order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        crate::experiments::e1_optimality::experiment(),
        crate::experiments::e2_scaling::experiment(),
        crate::experiments::e3_pruning::experiment(),
        crate::experiments::e4_quality::experiment(),
        crate::experiments::e5_cost_model::experiment(),
        crate::experiments::e6_heterogeneity::experiment(),
        crate::experiments::e7_generalizations::experiment(),
        crate::experiments::e8_runtime::experiment(),
        crate::experiments::e9_btsp::experiment(),
        crate::experiments::e10_blocks::experiment(),
        crate::experiments::e11_anytime::experiment(),
        crate::experiments::e12_latency::experiment(),
        crate::experiments::e13_service::experiment(),
        crate::experiments::e14_server::experiment(),
        crate::experiments::e15_fleet::experiment(),
        crate::experiments::e16_tiered::experiment(),
        crate::experiments::e17_resilience::experiment(),
        crate::experiments::e18_telemetry::experiment(),
    ]
}

/// Runs one experiment, prints its tables, and writes artifacts if the
/// context has an output directory. Returns the tables.
///
/// # Panics
///
/// Panics if artifact files cannot be written (experiments are developer
/// tooling; failing loudly beats silently dropping results).
pub fn run_experiment(experiment: &Experiment, ctx: &ExperimentContext) -> Vec<Table> {
    println!("== {} — {}", experiment.id, experiment.title);
    println!("   claim: {}", experiment.claim);
    let started = Instant::now();
    let tables = (experiment.run)(ctx);
    let elapsed = started.elapsed();
    for table in &tables {
        println!("\n{table}");
    }
    println!("[{} finished in {:.2?}]\n", experiment.id, elapsed);

    if let Some(dir) = &ctx.out_dir {
        fs::create_dir_all(dir).expect("create results directory");
        let mut md = String::new();
        let mut csv = String::new();
        for table in &tables {
            md.push_str(&table.to_markdown());
            md.push('\n');
            csv.push_str(&table.to_csv());
            csv.push('\n');
        }
        fs::write(dir.join(format!("{}.md", experiment.id)), md).expect("write markdown artifact");
        fs::write(dir.join(format!("{}.csv", experiment.id)), csv).expect("write csv artifact");
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let experiments = all_experiments();
        assert_eq!(experiments.len(), 18);
        for (i, e) in experiments.iter().enumerate() {
            assert_eq!(e.id, format!("e{}", i + 1), "registry order");
            assert!(!e.title.is_empty());
            assert!(!e.claim.is_empty());
        }
    }

    #[test]
    fn context_size_picks() {
        let full = ExperimentContext::default();
        assert_eq!(full.size(10, 2), 10);
        let quick = ExperimentContext { quick: true, ..Default::default() };
        assert_eq!(quick.size(10, 2), 2);
    }
}
