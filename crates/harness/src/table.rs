//! Result tables: aligned text for the terminal, Markdown and CSV for the
//! `results/` artifacts referenced by EXPERIMENTS.md.

use std::fmt;

/// A rectangular result table with a title and free-form notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    ///
    /// # Panics
    ///
    /// Panics if no headers are given.
    pub fn new(
        title: impl Into<String>,
        headers: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table { title: title.into(), headers, rows: Vec::new(), notes: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: impl IntoIterator<Item = impl Into<String>>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width must match headers");
        self.rows.push(row);
    }

    /// Appends a free-form note rendered under the table.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n_{note}_\n"));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes fields containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let escape = |field: &str| -> String {
            if field.contains(',') || field.contains('"') || field.contains('\n') {
                format!("\"{}\"", field.replace('"', "\"\""))
            } else {
                field.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|f| escape(f)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    /// Column-aligned plain text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, "{cell:<w$}  ")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

/// Fixed-precision float formatting for table cells.
pub fn cell_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Millisecond formatting for table cells.
pub fn cell_ms(duration: std::time::Duration) -> String {
    format!("{:.3}", duration.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample() -> Table {
        let mut t = Table::new("demo", ["name", "value"]);
        t.push_row(["a", "1"]);
        t.push_row(["bb", "2.5"]);
        t.push_note("a note");
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### demo"));
        assert!(md.contains("| name | value |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| bb | 2.5 |"));
        assert!(md.contains("_a note_"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", ["a", "b"]);
        t.push_row(["plain", "with,comma"]);
        t.push_row(["with\"quote", "z"]);
        let csv = t.to_csv();
        assert!(csv.contains("plain,\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\",z"));
    }

    #[test]
    fn display_aligns() {
        let text = sample().to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("note: a note"));
        // Header and first row align on the second column.
        let lines: Vec<&str> = text.lines().collect();
        let header_pos = lines[1].find("value").unwrap();
        let row_pos = lines[3].find('1').unwrap();
        assert_eq!(header_pos, row_pos);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("x", ["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn cell_formatters() {
        assert_eq!(cell_f64(1.23456, 2), "1.23");
        assert_eq!(cell_ms(Duration::from_micros(1500)), "1.500");
    }

    #[test]
    fn counts() {
        let t = sample();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.title(), "demo");
    }
}
