//! Command-line entry point of the experiment harness.
//!
//! ```text
//! harness [IDS...] [--quick] [--out DIR] [--list]
//!
//!   IDS      experiment ids (e1 … e10); defaults to all
//!   --quick  smaller sizes / fewer seeds (CI-scale run)
//!   --out    artifact directory (default: results/)
//!   --list   print the registry and exit
//! ```

use dsq_harness::{all_experiments, run_experiment, ExperimentContext};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_dir = Some(PathBuf::from("results"));
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--no-out" => out_dir = None,
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                for e in all_experiments() {
                    println!("{:4}  {}", e.id, e.title);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: harness [IDS...] [--quick] [--out DIR] [--no-out] [--list]");
                return ExitCode::SUCCESS;
            }
            "all" => ids.clear(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_string()),
        }
    }

    let registry = all_experiments();
    let selected: Vec<_> = if ids.is_empty() {
        registry.iter().collect()
    } else {
        let mut selected = Vec::new();
        for id in &ids {
            match registry.iter().find(|e| e.id == id) {
                Some(e) => selected.push(e),
                None => {
                    eprintln!("unknown experiment {id}; use --list");
                    return ExitCode::FAILURE;
                }
            }
        }
        selected
    };

    let ctx = ExperimentContext { quick, out_dir };
    for experiment in selected {
        run_experiment(experiment, &ctx);
    }
    ExitCode::SUCCESS
}
