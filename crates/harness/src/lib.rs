//! Experiment harness for the PODC'10 service-ordering reproduction.
//!
//! The brief announcement contains no tables or figures of its own — its
//! evaluation lives in the authors' unavailable technical report — so
//! this crate *reconstructs* the evaluation its claims require (see
//! DESIGN.md §5 for the experiment index and EXPERIMENTS.md for measured
//! results):
//!
//! | id | what it checks |
//! |----|----------------|
//! | e1 | the pruning lemmas preserve optimality (vs exhaustive/DP) |
//! | e2 | optimizer scaling vs the exact exponential baselines |
//! | e3 | per-lemma pruning ablation (nodes visited) |
//! | e4 | plan quality vs the uniform-cost prior art `[1]` and heuristics |
//! | e5 | Eq. 1 vs discrete-event simulation |
//! | e6 | the price of network-obliviousness vs heterogeneity |
//! | e7 | σ > 1 and precedence generalizations |
//! | e8 | threaded (real) execution agreement |
//! | e9 | bottleneck-TSP reduction instances |
//! | e10 | block-size amortization of transfer costs |
//! | e11 | anytime quality of the budgeted search (extension) |
//! | e12 | tuple latency under sub-saturation load (extension) |
//! | e13 | plan-cache batch throughput on drifting statistics (extension) |
//! | e14 | plan-serving daemon: socket soak, warm restart, admission (extension) |
//! | e15 | fingerprint-sharded fleet: partitioning, failover, fallback (extension) |
//! | e16 | tiered anytime serving: heuristic gap, convergence, refinement pruning (extension) |
//!
//! Run everything with `cargo run --release -p dsq-harness -- all`, a
//! subset with `… -- e3 e4`, and halve the sizes with `--quick`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
mod runner;
mod table;

pub use runner::{all_experiments, run_experiment, Experiment, ExperimentContext};
pub use table::{cell_f64, cell_ms, Table};
