//! E4 — Plan quality: the decentralized optimum vs the
//! network-oblivious optimum of reference `[1]` and vs heuristics.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, Table};
use dsq_baselines::{
    best_greedy, local_search, random_sampling, simulated_annealing, uniform_reference_plan,
    AnnealingConfig, LocalSearchConfig,
};
use dsq_core::{bottleneck_cost, optimize};
use dsq_workloads::{Family, Sweep};

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e4",
        title: "Plan quality: optimum vs uniform-cost prior art and heuristics",
        claim: "\"different orderings may result in significantly different response times\" and the gap to the uniform-communication special case of [1] (§1)",
        run,
    }
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let n: usize = ctx.size(12, 9);
    let seeds: u64 = ctx.size(10, 3);

    let mut table = Table::new(
        format!("E4: cost ratio to the decentralized optimum (n={n}, {seeds} seeds, mean [max])"),
        [
            "family",
            "uniform-opt [1]",
            "greedy",
            "local search",
            "annealing",
            "random best-of-100",
            "random mean",
        ],
    );
    for family in [Family::Euclidean, Family::Clustered, Family::HubSpoke, Family::UniformRandom] {
        let points = Sweep::new().families([family]).sizes([n]).seeds(0..seeds).build();
        let mut ratios: [Vec<f64>; 6] = Default::default();
        for point in &points {
            let inst = &point.instance;
            let opt = optimize(inst).cost();
            let (uniform_plan, _) = uniform_reference_plan(inst).expect("within DP limit");
            let sample = random_sampling(inst, 100, point.seed);
            let entries = [
                bottleneck_cost(inst, &uniform_plan),
                best_greedy(inst).cost(),
                local_search(inst, &LocalSearchConfig { seed: point.seed, ..Default::default() })
                    .cost(),
                simulated_annealing(
                    inst,
                    &AnnealingConfig { steps: 10_000, seed: point.seed, ..Default::default() },
                )
                .cost(),
                sample.cost(),
                sample.mean_cost(),
            ];
            for (bucket, value) in ratios.iter_mut().zip(entries) {
                bucket.push(value / opt);
            }
        }
        let fmt = |v: &Vec<f64>| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let max = v.iter().copied().fold(0.0f64, f64::max);
            format!("{} [{}]", cell_f64(mean, 3), cell_f64(max, 2))
        };
        table.push_row([
            family.name().to_string(),
            fmt(&ratios[0]),
            fmt(&ratios[1]),
            fmt(&ratios[2]),
            fmt(&ratios[3]),
            fmt(&ratios[4]),
            fmt(&ratios[5]),
        ]);
    }
    table.push_note(
        "uniform-opt = the optimal plan under the instance's mean transfer cost (reference [1]), evaluated on the true heterogeneous network",
    );
    vec![table]
}
