//! E16 — Tiered anytime serving (extension): a greedy heuristic tier
//! answers cache misses in microseconds while background refinement
//! converges the cache to exact plans. Three claims under test: the
//! heuristic's worst-case optimality gap on the netsim corpus stays
//! within a documented bound, a drifting request stream's steady-state
//! cache contents converge to exact after a drain, and the
//! incumbent-warm-started refinements visit no more branch-and-bound
//! nodes than cold searches over the same instances.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, Table};
use dsq_baselines::fast_greedy;
use dsq_core::{optimize_with, BnbConfig, QueryInstance};
use dsq_netsim::{clustered, euclidean, hub_spoke, last_mile, uniform_random, Topology};
use dsq_service::{CacheConfig, PlanCache, Planner, TieredConfig, TieredPlanner};
use dsq_workloads::{generate, DriftConfig, DriftStream, Family};
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Documented worst-case bound on the greedy tier's relative optimality
/// gap (`heuristic / optimal − 1`) over the netsim corpus below. The
/// worst measured gap at n = 12 is ≈ 0.26, on a clustered topology
/// whose expensive inter-cluster links punish the greedy chain's
/// one-step outlook; the single-scale regimes (euclidean, hub-spoke,
/// uniform-random) sit at or near zero. The bound is what a tier-1
/// answer guarantees *before* its refinement lands — after the drain
/// every served plan is exact.
const GAP_BOUND: f64 = 0.5;

/// Minimum cold-exact / tier-1 latency ratio asserted on the btsp-hard
/// instances (the acceptance criterion is ≥ 10× at n = 12; the measured
/// ratio is around 15–20×: a ~40 µs serve path against a cold search
/// in the several-hundred-µs range).
const MIN_SPEEDUP: f64 = 10.0;

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e16",
        title: "Tiered anytime serving: heuristic gap, convergence, refinement pruning (extension)",
        claim: "serving-layer extension: answering misses with a precedence-respecting cubic greedy plan cuts tier-1 latency an order of magnitude below the cold exact search at a bounded optimality gap, and background refinements warm-started from that plan converge the cache to exact while visiting no more nodes than cold searches",
        run,
    }
}

/// The netsim corpus: every topology family paired with the clustered
/// workload's heterogeneous services, a few seeds each.
fn netsim_corpus(n: usize, seeds: u64) -> Vec<(String, QueryInstance)> {
    let mut corpus = Vec::new();
    for seed in 0..seeds {
        let topologies: [Topology; 5] = [
            euclidean(n, 100.0, 1.0, 0.1, 100 + seed),
            clustered(n, 3, 1.0, 10.0, 0.2, 200 + seed),
            hub_spoke(n, 3, 1.0, 5.0, 300 + seed),
            last_mile(n, (1.0, 5.0), (0.1, 0.5), 400 + seed),
            uniform_random(n, 1.0, 10.0, false, 500 + seed),
        ];
        let base = generate(Family::Clustered, n, seed);
        for topology in topologies {
            let name = topology.name().to_string();
            let instance = QueryInstance::builder()
                .name(format!("e16-{name}-s{seed}"))
                .services(base.services().to_vec())
                .comm(topology.into_comm())
                .build()
                .expect("corpus instances are valid");
            corpus.push((name, instance));
        }
    }
    corpus
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let n: usize = ctx.size(12, 9);
    let seeds: u64 = ctx.size(5, 2);
    let config = BnbConfig::paper();

    // The latency/pruning table ignores the quick knob: the ≥ 10×
    // criterion is defined at n = 12, where the exponential cold search
    // and the cubic greedy actually separate (at n = 9 the cold search
    // itself is only a few tens of microseconds), and the whole table
    // costs single-digit milliseconds anyway.
    vec![
        gap_table(n, seeds, &config),
        convergence_table(ctx, n, &config),
        refinement_table(12, 5, &config),
    ]
}

/// Worst-case greedy gap per topology family, asserted under the
/// documented bound.
fn gap_table(n: usize, seeds: u64, config: &BnbConfig) -> Table {
    let mut table = Table::new(
        format!("E16a: greedy-tier optimality gap on the netsim corpus, n = {n}, {seeds} seeds per topology"),
        ["topology", "instances", "mean gap", "max gap"],
    );
    let corpus = netsim_corpus(n, seeds);
    let mut worst_overall = 0.0f64;
    for family in ["euclidean", "clustered", "hub-spoke", "last-mile", "uniform-random"] {
        let mut gaps = Vec::new();
        for (_, instance) in corpus.iter().filter(|(name, _)| name == family) {
            let greedy = fast_greedy(instance);
            let exact = optimize_with(instance, config);
            assert!(
                greedy.cost() >= exact.cost() - 1e-9 * exact.cost().abs().max(1.0),
                "the greedy plan upper-bounds the optimum on {}",
                instance.name()
            );
            gaps.push((greedy.cost() - exact.cost()) / exact.cost().abs().max(f64::MIN_POSITIVE));
        }
        let max = gaps.iter().copied().fold(0.0f64, f64::max);
        worst_overall = worst_overall.max(max);
        table.push_row([
            family.to_string(),
            gaps.len().to_string(),
            cell_f64(gaps.iter().sum::<f64>() / gaps.len() as f64, 3),
            cell_f64(max, 3),
        ]);
    }
    assert!(
        worst_overall <= GAP_BOUND,
        "worst greedy gap {worst_overall:.3} exceeds the documented bound {GAP_BOUND}"
    );
    table.push_note(format!(
        "gap = greedy bottleneck cost / true optimum − 1; worst case {worst_overall:.3} is within the documented tier-1 bound {GAP_BOUND}"
    ));
    table
}

/// A drifting stream served through the tiered planner: tier-1 answers
/// arrive while refinement runs behind; after the drain the steady-state
/// cache holds exact plans only.
fn convergence_table(ctx: &ExperimentContext, n: usize, config: &BnbConfig) -> Table {
    let requests: usize = ctx.size(160, 32);
    let mut table = Table::new(
        format!("E16b: tiered serving of a drifting stream, n = {n}, {requests} requests over 8 base queries"),
        ["family", "tier-1 answers", "refined", "skipped", "dropped", "heur entries after drain", "mean gap", "max gap"],
    );
    for family in [Family::BtspHard, Family::Clustered] {
        let cache = Arc::new(PlanCache::new(CacheConfig::default()));
        let planner = TieredPlanner::new(Arc::clone(&cache), config.clone());
        for instance in DriftStream::new(DriftConfig::new(family, n, 29, requests)) {
            planner.plan(&instance).expect("tiered planners are infallible");
        }
        planner.drain().expect("draining the refinement queue cannot fail");
        let stats = planner.tiered_stats();
        let heuristic_entries = cache.stats().heuristic_entries;
        assert_eq!(
            heuristic_entries,
            0,
            "after the drain the {} cache must hold exact plans only",
            family.name()
        );
        assert!(stats.refined > 0, "the stream's misses must trigger refinements");
        table.push_row([
            family.name().to_string(),
            stats.heuristic_served.to_string(),
            stats.refined.to_string(),
            stats.refine_skipped.to_string(),
            stats.refine_dropped.to_string(),
            heuristic_entries.to_string(),
            cell_f64(stats.mean_gap(), 3),
            cell_f64(stats.max_gap, 3),
        ]);
    }
    table.push_note(
        "every request is answered immediately (misses at the greedy tier); the drain lands all queued refinements, after which zero heuristic-tier entries remain — the steady-state cache serves exact plans",
    );
    table
}

/// Tier-1 miss latency vs the cold exact search, and refinement node
/// counts vs cold node counts, on distinct btsp-hard instances.
fn refinement_table(n: usize, seeds: u64, config: &BnbConfig) -> Table {
    let instances: Vec<QueryInstance> =
        (0..seeds).map(|s| generate(Family::BtspHard, n, 700 + s)).collect();

    // Cold reference: a fresh exact search per instance.
    let mut cold_elapsed = Duration::ZERO;
    let mut cold_nodes = 0u64;
    for instance in &instances {
        let started = Instant::now();
        let result = optimize_with(instance, config);
        cold_elapsed += started.elapsed();
        cold_nodes += result.stats().nodes_visited;
    }

    // Tier-1 miss latency, measured with refinement disabled (queue
    // capacity 0 drops every job) so the background worker does not
    // contend for the core mid-measurement.
    let latency_only = TieredConfig {
        refine_workers: NonZeroUsize::new(1).expect("non-zero literal"),
        queue_capacity: 0,
    };
    let cache = Arc::new(PlanCache::new(CacheConfig::default()));
    let planner = TieredPlanner::with_config(Arc::clone(&cache), config.clone(), latency_only);
    let mut tier1_elapsed = Duration::ZERO;
    for instance in &instances {
        let started = Instant::now();
        let served = planner.plan(instance).expect("tiered planners are infallible");
        tier1_elapsed += started.elapsed();
        assert_eq!(served.tier, dsq_service::PlanTier::Heuristic, "every request is a miss");
    }

    // Refinement node counts: a fresh tiered planner serves the same
    // misses, then drains, so every instance is refined exactly once
    // from its greedy incumbent.
    let cache = Arc::new(PlanCache::new(CacheConfig::default()));
    let refining = TieredPlanner::new(Arc::clone(&cache), config.clone());
    for instance in &instances {
        refining.plan(instance).expect("tiered planners are infallible");
    }
    refining.drain().expect("draining the refinement queue cannot fail");
    let stats = refining.tiered_stats();
    assert_eq!(stats.refined, instances.len() as u64, "each distinct miss refines once");
    assert!(
        stats.refine_nodes <= cold_nodes,
        "warm-started refinements visited {} nodes, more than the {} cold nodes",
        stats.refine_nodes,
        cold_nodes
    );

    let cold_ms = cold_elapsed.as_secs_f64() * 1e3 / instances.len() as f64;
    let tier1_us = tier1_elapsed.as_secs_f64() * 1e6 / instances.len() as f64;
    let speedup = (cold_elapsed.as_secs_f64() / tier1_elapsed.as_secs_f64()).max(0.0);
    assert!(
        speedup >= MIN_SPEEDUP,
        "tier-1 misses must answer at least {MIN_SPEEDUP}x faster than cold exact searches, got {speedup:.1}x"
    );

    let mut table = Table::new(
        format!("E16c: tier-1 miss latency and refinement pruning, btsp-hard, n = {n}"),
        [
            "instances",
            "cold mean ms",
            "tier-1 mean us",
            "speedup",
            "cold nodes",
            "refine nodes",
            "node ratio",
        ],
    );
    table.push_row([
        instances.len().to_string(),
        cell_f64(cold_ms, 3),
        cell_f64(tier1_us, 1),
        format!("{speedup:.0}×"),
        cold_nodes.to_string(),
        stats.refine_nodes.to_string(),
        cell_f64(stats.refine_nodes as f64 / cold_nodes.max(1) as f64, 3),
    ]);
    table.push_note(
        "tier-1 latency is the full serve path (fingerprint, probe, greedy) with refinement disabled; refine nodes = branch-and-bound nodes across background refinements warm-started from the greedy incumbent, never more than the cold searches' nodes",
    );
    table
}
