//! E13 — Serving-layer throughput (extension): on a drifting-statistics
//! request stream, the sharded plan cache answers most requests without a
//! search, and warm starts keep the rest exact. The claim under test:
//! amortizing optimization across near-identical queries multiplies batch
//! throughput without giving up plan quality.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, Table};
use dsq_core::{BnbConfig, Quantization};
use dsq_service::{
    optimize_batch, BatchOptions, CacheConfig, ColdPlanner, PlanCache, Planner, ServeSource,
};
use dsq_workloads::{DriftConfig, DriftStream, Family};
use std::num::NonZeroUsize;
use std::time::Instant;

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e13",
        title: "Plan-cache batch throughput on drifting statistics (extension)",
        claim: "serving-layer extension: federated traffic re-optimizes near-identical queries, so canonicalization + a validated plan cache multiplies batch throughput while every returned plan stays within the validation tolerance of a fresh optimum",
        run,
    }
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let n: usize = ctx.size(12, 9);
    let requests: usize = ctx.size(240, 48);
    let config = BnbConfig::paper();

    let mut table = Table::new(
        format!(
            "E13: drifting-selectivity stream, n = {n}, {requests} requests over 8 base queries"
        ),
        ["mode", "wall ms", "req/s", "speedup", "hit rate", "hits", "warm", "cold", "max dev"],
    );

    // BtspHard is the serving case that matters: optimization there is
    // orders of magnitude more expensive than fingerprinting, which is
    // exactly when a plan cache multiplies throughput. Correlated is the
    // honest counterpoint — its searches are so cheap after PR 2 that the
    // cache roughly breaks even, bounding the overhead of the layer.
    for family in [Family::BtspHard, Family::Correlated] {
        let stream: Vec<_> = DriftStream::new(DriftConfig::new(family, n, 23, requests)).collect();

        // Cold reference: every request pays a full optimization,
        // through the same Planner seam the cached modes use. Also the
        // ground truth the served plans are validated against below.
        let cold_planner = ColdPlanner::new(config.clone());
        let started = Instant::now();
        let cold_costs: Vec<f64> = stream
            .iter()
            .map(|inst| cold_planner.plan(inst).expect("cold planners are infallible").cost)
            .collect();
        let cold_elapsed = started.elapsed();
        let cold_rps = requests as f64 / cold_elapsed.as_secs_f64();
        table.push_row([
            format!("{} cold", family.name()),
            cell_f64(cold_elapsed.as_secs_f64() * 1e3, 1),
            cell_f64(cold_rps, 0),
            "1.00×".to_string(),
            "-".to_string(),
            "0".to_string(),
            "0".to_string(),
            format!("{requests}"),
            "0.0000".to_string(),
        ]);

        // Served, sequentially and through worker pools. The coarse 20%
        // fingerprint resolution keeps mean-reverting drift inside one
        // bucket per parameter; the 5% validation tolerance (checked
        // against the exact instance on every hit) is what actually
        // bounds served-plan quality.
        for workers in [1usize, 2, 4] {
            let cache = PlanCache::new(CacheConfig {
                quantization: Quantization::new(0.2),
                ..CacheConfig::default()
            });
            let options = BatchOptions {
                workers: NonZeroUsize::new(workers).expect("non-zero"),
                config: config.clone(),
            };
            let started = Instant::now();
            let served = optimize_batch(&cache, &stream, &options);
            let elapsed = started.elapsed();

            // Every served plan — cache hit or not — must cost within the
            // validation tolerance of that exact instance's true optimum.
            let tolerance = cache.config().validation_tolerance;
            let mut max_deviation = 0.0f64;
            let (mut hits, mut warm, mut cold) = (0u64, 0u64, 0u64);
            for (outcome, &optimal) in served.iter().zip(&cold_costs) {
                let deviation = (outcome.cost - optimal) / optimal.abs().max(1e-300);
                max_deviation = max_deviation.max(deviation);
                assert!(
                    deviation <= tolerance + 1e-9,
                    "served plan deviates {deviation:.4} > tolerance {tolerance} on {}",
                    outcome.fingerprint
                );
                match outcome.source {
                    ServeSource::CacheHit => hits += 1,
                    ServeSource::WarmStart => warm += 1,
                    ServeSource::Cold => cold += 1,
                }
            }
            let rps = requests as f64 / elapsed.as_secs_f64();
            table.push_row([
                format!("{} cached w{workers}", family.name()),
                cell_f64(elapsed.as_secs_f64() * 1e3, 1),
                cell_f64(rps, 0),
                format!("{:.2}×", rps / cold_rps),
                cell_f64(hits as f64 / requests as f64, 3),
                hits.to_string(),
                warm.to_string(),
                cold.to_string(),
                cell_f64(max_deviation, 4),
            ]);
        }
    }

    table.push_note(
        "cold = fresh branch-and-bound per request; cached = sharded plan cache (8 shards × 128 entries, 20% fingerprint quantization, 5% validation tolerance) in front of the same optimizer",
    );
    table.push_note(
        "max dev = worst relative gap between a served plan's cost on the exact instance and that instance's true optimum; hits are validated against the exact instance, misses/warm starts are exactly optimal by construction",
    );
    vec![table]
}
