//! E14 — Socket-served soak (extension): the long-lived `dsq-server`
//! daemon serves a drifting btsp-hard stream through a real Unix socket
//! within validation tolerance, restarts warm from a cache snapshot at
//! (almost) its steady-state hit rate, rejects with `busy` instead of
//! stalling when the admission queue is full, and recovers the hit rate
//! lost to boundary-walking parameters via multi-probe lookup.
//!
//! Every claim in that sentence is asserted, not just tabulated.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, Table};
use dsq_core::{optimize_with, BnbConfig, Quantization};
use dsq_server::{load_aware_retry_ms, Client, ListenAddr, Response, Server, ServerConfig};
use dsq_service::{CacheConfig, CachedPlanner, PlanCache, Planner, ServeSource};
use dsq_workloads::{DriftConfig, DriftStream, Family};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e14",
        title: "Plan-serving daemon: socket soak, warm restart, admission (extension)",
        claim: "serving-daemon extension: a long-lived server in front of the plan cache serves drifting federated traffic through a real socket within validation tolerance, persists its cache across restarts, and sheds overload by rejecting instead of stalling",
        run,
    }
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsq-e14-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create e14 temp dir");
    dir
}

fn server_config(snapshot: Option<PathBuf>) -> ServerConfig {
    ServerConfig {
        workers: NonZeroUsize::new(1).expect("non-zero"), // single-core CI
        cache: CacheConfig {
            quantization: Quantization::new(0.2), // E13's serving knobs
            probes: 2,
            ..CacheConfig::default()
        },
        snapshot_path: snapshot,
        snapshot_interval: Duration::from_secs(3600), // final write only
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    }
}

/// Drives `requests` through one client connection, asserting every
/// served plan against the instance's fresh optimum; returns
/// (hits, warm, cold, max deviation, wall seconds, cold-reference secs).
fn drive(
    client: &mut Client,
    requests: &[dsq_core::QueryInstance],
    tolerance: f64,
) -> (u64, u64, u64, f64, f64, f64) {
    let config = BnbConfig::paper();
    let reference_started = Instant::now();
    let reference: Vec<f64> =
        requests.iter().map(|inst| optimize_with(inst, &config).cost()).collect();
    let reference_elapsed = reference_started.elapsed().as_secs_f64();

    let (mut hits, mut warm, mut cold) = (0u64, 0u64, 0u64);
    let mut max_deviation = 0.0f64;
    let started = Instant::now();
    for (inst, &optimal) in requests.iter().zip(&reference) {
        match client.optimize(inst).expect("socket round trip") {
            Response::Served { source, cost, .. } => {
                let deviation = (cost - optimal) / optimal.abs().max(1e-300);
                max_deviation = max_deviation.max(deviation);
                assert!(
                    deviation <= tolerance + 1e-9,
                    "served plan deviates {deviation:.4} > tolerance {tolerance} on {}",
                    inst.name()
                );
                match source {
                    ServeSource::CacheHit => hits += 1,
                    ServeSource::WarmStart => warm += 1,
                    ServeSource::Cold => cold += 1,
                }
            }
            other => panic!("expected a served plan, got {other:?}"),
        }
    }
    (hits, warm, cold, max_deviation, started.elapsed().as_secs_f64(), reference_elapsed)
}

fn soak_and_restart(ctx: &ExperimentContext, dir: &std::path::Path) -> Table {
    let n: usize = ctx.size(12, 9);
    let half: usize = ctx.size(120, 24);
    let snapshot = dir.join("e14-cache.dsqc");
    std::fs::remove_file(&snapshot).ok();
    let config = server_config(Some(snapshot.clone()));
    let tolerance = config.cache.validation_tolerance;

    // One continuous drifting stream; the second half arrives after the
    // restart, so the restarted server faces *more* drifted statistics
    // than the snapshot was taken under.
    let stream: Vec<_> =
        DriftStream::new(DriftConfig::new(Family::BtspHard, n, 23, 2 * half)).collect();

    let mut table = Table::new(
        format!("E14a: btsp-hard drift soak over a Unix socket, n = {n}, {half} requests/phase"),
        ["phase", "requests", "hits", "warm", "cold", "hit rate", "max dev", "req/s", "vs cold"],
    );

    let mut phase_hit_rates = [0.0f64; 2];
    for (phase, label) in ["pre-restart", "warm restart"].iter().enumerate() {
        let server =
            Server::start(&ListenAddr::Unix(dir.join("e14.sock")), &config).expect("server starts");
        if phase == 1 {
            let restored = server.stats().restored_entries;
            assert!(restored > 0, "the restart must restore the snapshot");
        }
        let mut client = Client::connect(server.listen_addr()).expect("client connects");
        let slice = &stream[phase * half..(phase + 1) * half];
        let (hits, warm, cold, max_deviation, wall, reference) =
            drive(&mut client, slice, tolerance);
        let hit_rate = hits as f64 / half as f64;
        phase_hit_rates[phase] = hit_rate;
        table.push_row([
            label.to_string(),
            half.to_string(),
            hits.to_string(),
            warm.to_string(),
            cold.to_string(),
            cell_f64(hit_rate, 3),
            cell_f64(max_deviation, 4),
            cell_f64(half as f64 / wall, 0),
            format!("{:.2}×", reference / wall),
        ]);
        drop(client);
        let stats = server.shutdown();
        assert_eq!(stats.busy_rejections, 0, "a sequential client never overflows the queue");
        assert!(snapshot.exists(), "shutdown writes the snapshot");
    }

    // The headline persistence claim: a restarted process starts at the
    // steady-state hit rate (within 5 points), not cold.
    assert!(
        phase_hit_rates[1] >= phase_hit_rates[0] - 0.05,
        "warm-restart hit rate {} fell more than 5 points below pre-restart {}",
        phase_hit_rates[1],
        phase_hit_rates[0]
    );
    table.push_note(
        "one continuous drifting stream, split across a server restart; the second server restores the first one's final snapshot and must hold the hit rate within 5 points",
    );
    table.push_note(
        "max dev = worst relative gap between a served plan's cost and the instance's fresh optimum (asserted ≤ the 5% validation tolerance); vs cold = client wall-clock speedup over per-request cold optimization in-process",
    );
    std::fs::remove_file(&snapshot).ok();
    table
}

fn admission(ctx: &ExperimentContext, dir: &std::path::Path) -> Table {
    let n: usize = ctx.size(13, 10);
    let burst: usize = 8;
    let config = ServerConfig { queue_capacity: 1, retry_after_ms: 25, ..server_config(None) };
    let server =
        Server::start(&ListenAddr::Unix(dir.join("e14-adm.sock")), &config).expect("server starts");
    let addr = server.listen_addr().clone();

    // Connect everyone first, then release the burst together: with one
    // worker and a one-slot queue at most two requests can be absorbed
    // at any instant, so the burst must overflow.
    let instances: Vec<_> = (0..burst)
        .map(|seed| dsq_workloads::generate(Family::BtspHard, n, 60 + seed as u64))
        .collect();
    let barrier = Barrier::new(burst);
    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = instances
            .iter()
            .map(|instance| {
                let addr = &addr;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    barrier.wait();
                    client.optimize(instance).expect("busy or served")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("burst thread")).collect()
    });

    let (mut served, mut busy) = (0u64, 0u64);
    for (instance, response) in instances.iter().zip(&responses) {
        match response {
            Response::Served { cost, .. } => {
                let fresh = optimize_with(instance, &BnbConfig::paper());
                assert_eq!(cost.to_bits(), fresh.cost().to_bits(), "admitted ⇒ exact");
                served += 1;
            }
            Response::Busy { retry_after_ms } => {
                // The hint is load-aware: scaled up from the 25 ms base
                // by the queue backlog, never below it, capped at 16×.
                assert!(
                    (25..=load_aware_retry_ms(25, usize::MAX, 1)).contains(retry_after_ms),
                    "hint {retry_after_ms} outside the load-aware envelope"
                );
                busy += 1;
            }
            other => panic!("expected busy or served, got {other:?}"),
        }
    }
    assert!(busy >= 1, "an {burst}-deep burst into a 1-slot queue must be partially rejected");
    assert!(served >= 1, "the worker must keep serving under overload");
    // The accept loop never stalled: the server answers immediately.
    let mut probe = Client::connect(&addr).expect("connect probe");
    assert_eq!(probe.ping().expect("ping"), Response::Pong);
    drop(probe);
    let stats = server.shutdown();
    assert_eq!(stats.busy_rejections, busy);

    let mut table = Table::new(
        format!("E14b: admission under an {burst}-wide simultaneous burst (1 worker, queue 1)"),
        ["burst", "served", "busy", "stalled"],
    );
    table.push_row([
        burst.to_string(),
        served.to_string(),
        busy.to_string(),
        "0 (asserted)".to_string(),
    ]);
    table.push_note(
        "every response is either an exact served plan or an immediate `busy retry-after-ms`; the accept loop stays responsive throughout (post-burst ping asserted)",
    );
    table
}

fn boundary_recovery(ctx: &ExperimentContext) -> Table {
    let n: usize = ctx.size(10, 7);
    let requests: usize = ctx.size(96, 48);
    let resolution = 0.2;
    // 8 bases whose walked parameter alternates across a bucket boundary
    // every occurrence → 16 live primary keys; capacity 15 forces the
    // single-probe cache to evict each key just before its reuse. The
    // 0.05-bucket amplitude keeps the *value* swing (~±0.5%) far inside
    // the validation tolerance: the adversary here is the fingerprint
    // flip, not plan staleness.
    let mut drift = DriftConfig::boundary_walk(Family::BtspHard, n, 31, requests, resolution);
    if let Some(walk) = &mut drift.boundary {
        walk.amplitude = 0.05;
    }
    let stream: Vec<_> = DriftStream::new(drift).collect();

    let mut table = Table::new(
        format!(
            "E14c: boundary-walking drift, n = {n}, {requests} requests over 8 base queries (1 shard × 15 entries)"
        ),
        ["probes", "hits", "probe2", "warm", "cold", "hit rate"],
    );
    let mut hit_rates = [0.0f64; 2];
    for (row, probes) in [1usize, 2].into_iter().enumerate() {
        let cache = PlanCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: 15,
            quantization: Quantization::new(resolution),
            probes,
            ..CacheConfig::default()
        });
        // Through the Planner seam, like every other serve path.
        let planner = CachedPlanner::new(&cache, BnbConfig::paper());
        for inst in &stream {
            planner.plan(inst).expect("local planners are infallible");
        }
        let stats = cache.stats();
        hit_rates[row] = stats.hit_rate();
        table.push_row([
            probes.to_string(),
            stats.hits.to_string(),
            stats.probe2_hits.to_string(),
            stats.warm_starts.to_string(),
            stats.misses.to_string(),
            cell_f64(stats.hit_rate(), 3),
        ]);
    }
    assert!(
        hit_rates[0] < 0.2,
        "single-probe lookup must thrash on the boundary walk, got hit rate {}",
        hit_rates[0]
    );
    assert!(
        hit_rates[1] > 0.75,
        "two-probe lookup must recover the hit rate, got {}",
        hit_rates[1]
    );
    table.push_note(
        "each base query's first cost oscillates across a fingerprint-bucket boundary, flipping the primary key every occurrence; with one probe the 16 live keys thrash the 15-entry cache, with two probes the stable shifted-grid alias answers",
    );
    table
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let dir = temp_dir();
    let tables = vec![soak_and_restart(ctx, &dir), admission(ctx, &dir), boundary_recovery(ctx)];
    std::fs::remove_dir_all(&dir).ok();
    tables
}
