//! E10 — Block size: the per-tuple transfer amortization assumption
//! behind `t_{i,j}` (§2: "tuples are transmitted in blocks; in that case,
//! t is the cost to transmit a block divided by the number of tuples it
//! contains").

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, Table};
use dsq_core::{bottleneck_cost, optimize};
use dsq_simulator::{simulate, SimConfig};
use dsq_workloads::{generate, Family};

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e10",
        title: "Block size vs throughput in the simulated pipeline",
        claim: "per-tuple transfer cost as block cost / tuples-per-block (§2)",
        run,
    }
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let tuples: u64 = ctx.size(20_000, 4_000);
    let inst = generate(Family::Clustered, 6, 0);
    let plan = optimize(&inst).into_plan();
    let predicted = bottleneck_cost(&inst, &plan);

    let mut table = Table::new(
        format!("E10: block size sweep (clustered n=6, optimal plan, {tuples} tuples)"),
        ["block size", "throughput", "throughput·cost", "makespan", "blocks sent (stage 0)"],
    );
    for block in [1u64, 4, 16, 64, 256] {
        let report = simulate(
            &inst,
            &plan,
            &SimConfig { tuples, block_size: block, ..SimConfig::default() },
        );
        table.push_row([
            block.to_string(),
            cell_f64(report.throughput, 2),
            cell_f64(report.throughput * predicted, 3),
            cell_f64(report.makespan, 2),
            report.stages[0].blocks_sent.to_string(),
        ]);
    }
    table.push_note(format!(
        "Eq. 1 predicts steady throughput 1/cost = {:.3}; the sender pays per tuple regardless of batching, so the bottleneck rate is block-independent and throughput·cost → 1 as tuples/block grows — what decays at large blocks is only the pipeline-fill share of a finite run ({} tuples), confirming the amortized t_ij abstraction",
        1.0 / predicted,
        tuples
    ));
    vec![table]
}
