//! E6 — Heterogeneity sensitivity: how the gap between the
//! network-oblivious ordering and the decentralized optimum grows with
//! communication-cost spread.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, Table};
use dsq_baselines::uniform_reference_plan;
use dsq_core::{bottleneck_cost, optimize, QueryInstance};
use dsq_netsim::{heterogeneity, scale_spread};
use dsq_workloads::{generate, Family};

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e6",
        title: "Price of network-obliviousness vs communication heterogeneity",
        claim: "\"this work … assumes that the services communicate directly with each other … and, in addition, the inter-service communication costs differ\" (§1)",
        run,
    }
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let n: usize = ctx.size(12, 9);
    let seeds: u64 = ctx.size(5, 2);
    let factors = [0.0, 0.5, 1.0, 2.0, 4.0];

    let mut table = Table::new(
        format!("E6: uniform-opt cost / true optimum vs spread factor (clustered, n={n})"),
        ["spread factor", "mean CV", "mean gap", "max gap"],
    );
    for &factor in &factors {
        let mut cvs = Vec::new();
        let mut gaps = Vec::new();
        for seed in 0..seeds {
            let base = generate(Family::Clustered, n, seed);
            let scaled_comm = scale_spread(base.comm(), factor);
            let inst = QueryInstance::builder()
                .name(format!("e6-f{factor}-s{seed}"))
                .services(base.services().to_vec())
                .comm(scaled_comm)
                .build()
                .expect("valid instance");
            cvs.push(heterogeneity(inst.comm()));
            let opt = optimize(&inst).cost();
            let (plan, _) = uniform_reference_plan(&inst).expect("within DP limit");
            gaps.push(bottleneck_cost(&inst, &plan) / opt);
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        table.push_row([
            cell_f64(factor, 1),
            cell_f64(mean(&cvs), 3),
            cell_f64(mean(&gaps), 3),
            cell_f64(gaps.iter().copied().fold(0.0f64, f64::max), 3),
        ]);
    }
    table.push_note(
        "factor 0 collapses the network to its mean (gap must be 1.000); growing spread leaves the network-oblivious plan ever further from optimal",
    );
    vec![table]
}
