//! E8 — Real (threaded) execution: wall-clock agreement with the cost
//! model on the in-process runtime.
//!
//! The bottleneck metric (Eq. 1) assumes every service has its own host:
//! with `P` cores available to `n` single-threaded stages, the achievable
//! unit wall time is `max(bottleneck, total_work / P)` — on a single-core
//! machine pipelined overlap is impossible and the *sum* of the per-stage
//! terms governs. The experiment predicts with the core-aware formula and
//! reports both limits, so the table is meaningful on any host.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, Table};
use dsq_core::{bottleneck_cost, optimize, sum_cost, Plan};
use dsq_runtime::{run_pipeline, RuntimeConfig};
use dsq_workloads::credit_pipeline;

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e8",
        title: "Threaded pipeline: wall-clock agreement",
        claim:
            "\"extensive simulation and real experiments' results\" (§1) — the real-execution half",
        run,
    }
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let tuples: u64 = ctx.size(2_000, 400);
    // Scale: 1 cost unit = 150 µs, large enough that calibrated busy-work
    // dominates channel and timer overheads (a few µs per tuple).
    let scale_us = 150.0;
    let cfg = RuntimeConfig { tuples, time_scale_us: scale_us, ..RuntimeConfig::default() };
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    let inst = credit_pipeline();
    let optimal = optimize(&inst).into_plan();
    let naive = Plan::new(vec![1, 4, 3, 0, 2, 5]).expect("fixed permutation");

    let mut table = Table::new(
        format!(
            "E8: threaded credit-screening pipeline ({tuples} tuples, {scale_us}µs/unit, {cores} core(s))"
        ),
        ["plan", "bottleneck cost", "sum cost", "predicted tput (1/s)", "measured tput (1/s)", "measured/predicted", "observed bottleneck = predicted?"],
    );
    let mut measured = Vec::new();
    let mut predicted_unit = Vec::new();
    for (name, plan) in [("optimal", &optimal), ("naive (lookup first)", &naive)] {
        let bottleneck = bottleneck_cost(&inst, plan);
        let work = sum_cost(&inst, plan);
        // Core-aware unit wall time, in model units.
        let unit = bottleneck.max(work / cores as f64);
        let predicted_tput = 1.0 / (unit * scale_us * 1e-6);
        let report = run_pipeline(&inst, plan, &cfg);
        let predicted_bottleneck = dsq_core::bottleneck_position(&inst, plan);
        measured.push(report.throughput);
        predicted_unit.push(unit);
        table.push_row([
            name.to_string(),
            cell_f64(bottleneck, 3),
            cell_f64(work, 3),
            cell_f64(predicted_tput, 0),
            cell_f64(report.throughput, 0),
            cell_f64(report.throughput / predicted_tput, 3),
            format!(
                "{} ({} vs {})",
                report.bottleneck_position() == predicted_bottleneck,
                report.bottleneck_position(),
                predicted_bottleneck
            ),
        ]);
    }
    let speedup_measured = measured[0] / measured[1];
    let speedup_predicted = predicted_unit[1] / predicted_unit[0];
    table.push_note(format!(
        "measured speedup of optimal over naive: {speedup_measured:.2}× (core-aware model predicts {speedup_predicted:.2}×)"
    ));
    table.push_note(
        "with fewer cores than stages the pipeline serializes and sum cost governs; Eq. 1's bottleneck limit needs one host per service, which is exactly the paper's decentralized setting",
    );
    vec![table]
}
