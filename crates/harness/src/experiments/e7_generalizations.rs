//! E7 — Generalizations: proliferative selectivities (σ > 1) and
//! precedence constraints.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, cell_ms, Table};
use dsq_baselines::subset_dp;
use dsq_core::{optimize, QueryInstance};
use dsq_workloads::{generate_with, random_dag, Family, FamilyParams};
use std::time::Instant;

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e7",
        title: "Generalizations: proliferative services and precedence constraints",
        claim: "\"If the selectivities may be greater than 1, the way ε̄ is computed is slightly modified\" (Lemma 2 remark); \"our solution can be applied … when these restrictions are relaxed\" (§2)",
        run,
    }
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let n: usize = ctx.size(10, 8);
    let seeds: u64 = ctx.size(5, 2);

    // (a) Proliferative mix sweep.
    let mut prolif = Table::new(
        format!("E7a: proliferative fraction sweep (n={n})"),
        ["σ>1 fraction", "matches DP", "mean nodes", "mean time"],
    );
    for fraction in [0.0, 0.2, 0.4, 0.6] {
        let params = FamilyParams { proliferative_fraction: fraction, ..FamilyParams::default() };
        let mut matches = 0u64;
        let mut nodes = 0u64;
        let mut elapsed = std::time::Duration::ZERO;
        for seed in 0..seeds {
            let inst = generate_with(Family::ProliferativeMix, n, seed, &params);
            let reference = subset_dp(&inst).expect("within DP limit").cost();
            let t0 = Instant::now();
            let result = optimize(&inst);
            elapsed += t0.elapsed();
            nodes += result.stats().nodes_visited;
            matches += u64::from((result.cost() - reference).abs() <= 1e-9 * reference.max(1.0));
        }
        prolif.push_row([
            cell_f64(fraction, 1),
            format!("{matches}/{seeds}"),
            (nodes / seeds).to_string(),
            format!("{} ms", cell_ms(elapsed / seeds as u32)),
        ]);
    }

    // (b) Precedence density sweep.
    let np = ctx.size(12, 9);
    let mut prec = Table::new(
        format!("E7b: precedence density sweep (uniform-random, n={np})"),
        ["edge density", "matches DP", "mean nodes", "mean time"],
    );
    for density in [0.0, 0.2, 0.5, 0.8] {
        let mut matches = 0u64;
        let mut nodes = 0u64;
        let mut elapsed = std::time::Duration::ZERO;
        for seed in 0..seeds {
            let base = generate_with(Family::UniformRandom, np, seed, &FamilyParams::default());
            let inst = QueryInstance::builder()
                .name("e7b")
                .services(base.services().to_vec())
                .comm(base.comm().clone())
                .precedence(random_dag(np, density, seed))
                .build()
                .expect("valid instance");
            let reference = subset_dp(&inst).expect("within DP limit").cost();
            let t0 = Instant::now();
            let result = optimize(&inst);
            elapsed += t0.elapsed();
            nodes += result.stats().nodes_visited;
            matches += u64::from((result.cost() - reference).abs() <= 1e-9 * reference.max(1.0));
        }
        prec.push_row([
            cell_f64(density, 1),
            format!("{matches}/{seeds}"),
            (nodes / seeds).to_string(),
            format!("{} ms", cell_ms(elapsed / seeds as u32)),
        ]);
    }
    prec.push_note(
        "denser constraints shrink the feasible search space, so nodes fall as density rises",
    );
    vec![prolif, prec]
}
