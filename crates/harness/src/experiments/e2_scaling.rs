//! E2 — Optimizer scaling: wall-clock time and visited nodes vs N,
//! against the exact exponential baselines.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_ms, Table};
use dsq_baselines::{exhaustive_with_limit, subset_dp};
use dsq_core::{optimize, SearchStats};
use dsq_workloads::{Family, Sweep};
use std::time::{Duration, Instant};

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e2",
        title: "Optimizer scaling vs exhaustive search and subset DP",
        claim: "\"according to the extensive simulation and real experiments' results [the algorithm] appears to be particularly efficient\" (§1)",
        run,
    }
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let sizes: Vec<usize> = ctx.size(vec![8, 10, 12, 14, 16], vec![8, 10, 12]);
    let seeds: u64 = ctx.size(5, 2);

    let mut tables = Vec::new();
    for family in [Family::UniformRandom, Family::Euclidean, Family::BtspHard] {
        let mut table = Table::new(
            format!("E2: optimization time vs N ({})", family.name()),
            ["n", "B&B median", "B&B max", "B&B nodes", "DP", "exhaustive", "unpruned prefixes"],
        );
        for &n in &sizes {
            let points = Sweep::new().families([family]).sizes([n]).seeds(0..seeds).build();
            let mut bnb_times = Vec::new();
            let mut bnb_nodes = Vec::new();
            let mut dp_time = Duration::ZERO;
            let mut ex_time: Option<Duration> = None;
            for point in &points {
                let t0 = Instant::now();
                let result = optimize(&point.instance);
                bnb_times.push(t0.elapsed());
                bnb_nodes.push(result.stats().nodes_visited);

                let t0 = Instant::now();
                subset_dp(&point.instance).expect("within DP limit");
                dp_time += t0.elapsed();

                if n <= 10 {
                    let t0 = Instant::now();
                    exhaustive_with_limit(&point.instance, 10).expect("within limit");
                    *ex_time.get_or_insert(Duration::ZERO) += t0.elapsed();
                }
            }
            bnb_times.sort();
            let median = bnb_times[bnb_times.len() / 2];
            let max = *bnb_times.last().expect("non-empty");
            let mean_nodes = bnb_nodes.iter().sum::<u64>() / bnb_nodes.len() as u64;
            table.push_row([
                n.to_string(),
                format!("{} ms", cell_ms(median)),
                format!("{} ms", cell_ms(max)),
                mean_nodes.to_string(),
                format!("{} ms", cell_ms(dp_time / seeds as u32)),
                ex_time
                    .map(|t| format!("{} ms", cell_ms(t / seeds as u32)))
                    .unwrap_or_else(|| "—".into()),
                SearchStats::unpruned_prefix_count(n).to_string(),
            ]);
        }
        table.push_note(format!("{seeds} seeds per size; exhaustive capped at n=10"));
        tables.push(table);
    }
    tables
}
