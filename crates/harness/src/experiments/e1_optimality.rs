//! E1 — Optimality validation: the lemma-driven pruning never loses the
//! optimum.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, Table};
use dsq_baselines::{exhaustive, subset_dp};
use dsq_core::{optimize_with, BnbConfig};
use dsq_workloads::{generate, random_dag, Family, Sweep};

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e1",
        title: "Optimality validation of the branch-and-bound",
        claim: "\"a branch-and-bound algorithm that is guaranteed to find the linear ordering of services which minimizes the query response time\" (§1)",
        run,
    }
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let sizes: Vec<usize> = ctx.size(vec![4, 5, 6, 7, 8], vec![4, 5, 6]);
    let seeds: u64 = ctx.size(10, 3);
    let configs: [(&str, BnbConfig); 4] = [
        ("paper", BnbConfig::paper()),
        ("incumbent-only", BnbConfig::incumbent_only()),
        ("no-backjump", BnbConfig::without_backjump()),
        ("extended", BnbConfig::extended()),
    ];

    let mut table = Table::new(
        "E1: B&B vs exact baselines (all ablation configs)",
        ["family", "instances", "checks", "matches", "max rel gap"],
    );
    for family in Family::ALL {
        let points =
            Sweep::new().families([family]).sizes(sizes.iter().copied()).seeds(0..seeds).build();
        let mut checks = 0u64;
        let mut matches = 0u64;
        let mut worst_gap = 0.0f64;
        let count = points.len();
        for point in points {
            let reference = subset_dp(&point.instance).expect("sizes within DP limit").cost();
            if point.n <= 8 {
                let brute = exhaustive(&point.instance).expect("sizes within limit").cost();
                let gap = rel_gap(brute, reference);
                worst_gap = worst_gap.max(gap);
                checks += 1;
                matches += u64::from(gap <= 1e-9);
            }
            for (_, cfg) in &configs {
                let result = optimize_with(&point.instance, cfg);
                let gap = rel_gap(result.cost(), reference);
                worst_gap = worst_gap.max(gap);
                checks += 1;
                matches += u64::from(gap <= 1e-9);
            }
        }
        table.push_row([
            family.name().to_string(),
            count.to_string(),
            checks.to_string(),
            matches.to_string(),
            format!("{worst_gap:.2e}"),
        ]);
    }
    table.push_note(format!(
        "sizes {sizes:?}, {seeds} seeds per size; reference = subset DP, cross-checked by exhaustive search up to n=8"
    ));

    // Precedence-constrained variant.
    let mut prec = Table::new(
        "E1b: with precedence constraints (density 0.25)",
        ["n", "instances", "matches", "max rel gap"],
    );
    for &n in &sizes {
        let mut matches = 0u64;
        let mut worst = 0.0f64;
        for seed in 0..seeds {
            let base = generate(Family::UniformRandom, n, 1_000 + seed);
            let inst = dsq_core::QueryInstance::builder()
                .name("e1b")
                .services(base.services().to_vec())
                .comm(base.comm().clone())
                .precedence(random_dag(n, 0.25, seed))
                .build()
                .expect("valid instance");
            let reference = subset_dp(&inst).expect("within limit").cost();
            let result = optimize_with(&inst, &BnbConfig::paper());
            let gap = rel_gap(result.cost(), reference);
            worst = worst.max(gap);
            matches += u64::from(gap <= 1e-9);
        }
        prec.push_row([n.to_string(), seeds.to_string(), matches.to_string(), cell_f64(worst, 12)]);
    }
    vec![table, prec]
}

fn rel_gap(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-12)
}
