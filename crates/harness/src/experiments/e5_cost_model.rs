//! E5 — Cost-model validation: Eq. 1 against the discrete-event
//! simulator.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, Table};
use dsq_baselines::random_plan;
use dsq_core::{bottleneck_cost, optimize};
use dsq_simulator::{simulate, SimConfig};
use dsq_workloads::{credit_pipeline, generate, Family};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e5",
        title: "Eq. 1 vs simulated pipelined execution",
        claim: "\"the query response time is no longer the sum of the service costs, but is determined by the slowest node\" (§1)",
        run,
    }
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let tuples: u64 = ctx.size(20_000, 4_000);
    let mut table = Table::new(
        format!("E5: predicted vs simulated ({tuples} tuples, blocks of 32)"),
        ["instance", "plan", "predicted cost", "measured unit cost", "ratio", "throughput·cost"],
    );

    let mut instances = vec![("credit-screening".to_string(), credit_pipeline())];
    for seed in 0..ctx.size(3, 1) {
        instances.push((format!("clustered-n6-s{seed}"), generate(Family::Clustered, 6, seed)));
        instances.push((format!("euclidean-n10-s{seed}"), generate(Family::Euclidean, 10, seed)));
    }

    for (name, inst) in &instances {
        let mut rng = StdRng::seed_from_u64(7);
        let mut plans = vec![("optimal".to_string(), optimize(inst).into_plan())];
        for r in 0..2 {
            plans.push((format!("random-{r}"), random_plan(inst, &mut rng)));
        }
        for (plan_name, plan) in plans {
            let predicted = bottleneck_cost(inst, &plan);
            let report = simulate(inst, &plan, &SimConfig { tuples, ..SimConfig::default() });
            let measured = report.measured_unit_cost();
            table.push_row([
                name.clone(),
                plan_name,
                cell_f64(predicted, 4),
                cell_f64(measured, 4),
                cell_f64(measured / predicted, 3),
                cell_f64(report.throughput * predicted, 3),
            ]);
        }
    }
    table.push_note(
        "ratio = simulated bottleneck-stage busy time per input tuple / Eq. 1; throughput·cost → 1 for a saturated pipeline",
    );
    vec![table]
}
