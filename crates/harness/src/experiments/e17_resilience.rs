//! E17 — Resilient fleet (extension): growing a plan-serving fleet with
//! a warm partition handoff keeps previously cached keys hitting without
//! recomputation (consistent hashing moves only the new backend's arc,
//! not the whole keyspace); a flapping backend is ejected by its circuit
//! breaker and readmitted by a successful half-open probe with exact
//! counter accounting; and a fault-injecting server never widens the
//! failure surface beyond typed errors — zero panics, zero protocol
//! errors, every request still served through the fallback.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, Table};
use dsq_core::{optimize_with, BnbConfig, PlanSnapshot, Quantization, QueryInstance};
use dsq_server::{
    Client, ExportRequest, FaultProfile, ListenAddr, RemotePlanner, Server, ServerConfig,
};
use dsq_service::{
    BreakerConfig, BreakerState, CacheConfig, ColdPlanner, FleetPlanner, HashRing, PlanError,
    Planner, PlannerStats, ServeSource, ServedPlan, DEFAULT_VNODES,
};
use dsq_workloads::{generate, DriftConfig, DriftStream, Family};
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e17",
        title: "Resilient fleet: warm resize handoff, circuit breaking, chaos (extension)",
        claim: "resilience extension: growing the fleet with a consistent-hash partition handoff keeps every previously cached key serving as a warm hit (no recomputation, bit-identical costs), a flapping backend trips its circuit breaker and is readmitted by one successful half-open probe with exact counter accounting, and under injected response-frame faults the failure surface stays typed — no panic, zero protocol errors, every request served",
        run,
    }
}

/// Serving quantization shared by routing and the backend caches.
const RESOLUTION: f64 = 0.2;

/// Fixed working set of the grow scenario — large enough that the
/// three-way ring split leaves every backend a non-empty partition.
const GROW_SET: usize = 20;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsq-e17-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create e17 temp dir");
    dir
}

fn server_config() -> ServerConfig {
    ServerConfig {
        workers: NonZeroUsize::new(1).expect("non-zero"), // single-core CI
        cache: CacheConfig {
            shards: 1,
            capacity_per_shard: 2 * GROW_SET, // retention, not eviction, is under test
            quantization: Quantization::new(RESOLUTION),
            probes: 1,
            ..CacheConfig::default()
        },
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    }
}

fn start_server(dir: &Path, tag: &str, chaos: Option<FaultProfile>) -> Server {
    let config = ServerConfig { chaos, ..server_config() };
    Server::start(&ListenAddr::Unix(dir.join(format!("e17-{tag}.sock"))), &config)
        .expect("server starts")
}

/// Fixed ring labels, one per backend: the default labels embed the
/// pid-scoped socket paths, which would reshuffle the keyspace split
/// every run. Pinned labels make the grow's moved-key set (and so every
/// assert below) deterministic.
fn ring_labels(count: usize) -> Vec<String> {
    (0..count).map(|i| format!("node-{i}")).collect()
}

fn fleet_over<'a>(servers: &[&Server], with_fallback: bool) -> FleetPlanner<'a> {
    let backends: Vec<Box<dyn Planner>> = servers
        .iter()
        .map(|s| Box::new(RemotePlanner::new(s.listen_addr().clone())) as Box<dyn Planner>)
        .collect();
    let fleet = FleetPlanner::new(backends, Quantization::new(RESOLUTION))
        .expect("the experiment always routes over at least one backend")
        .with_ring_labels(&ring_labels(servers.len()));
    if with_fallback {
        fleet.with_fallback(Box::new(ColdPlanner::new(BnbConfig::paper())))
    } else {
        fleet
    }
}

/// Serves every key once, asserting each plan within `tolerance` of its
/// fresh optimum; returns the served outcomes plus a hit count.
fn cycle(
    planner: &dyn Planner,
    keys: &[QueryInstance],
    reference: &[f64],
    tolerance: f64,
) -> (Vec<ServedPlan>, u64) {
    let mut hits = 0u64;
    let served: Vec<ServedPlan> = keys
        .iter()
        .zip(reference)
        .map(|(inst, &optimal)| {
            let served = planner.plan(inst).expect("the fleet always serves");
            let deviation = (served.cost - optimal) / optimal.abs().max(1e-300);
            assert!(
                deviation <= tolerance + 1e-9,
                "served plan deviates {deviation:.4} > tolerance {tolerance} on {}",
                inst.name()
            );
            hits += u64::from(served.source == ServeSource::CacheHit);
            served
        })
        .collect();
    (served, hits)
}

/// E17a: grow a warm 2-backend fleet to 3 via `export-partition` /
/// `import-partition`. Every previously cached key must keep hitting —
/// same cost bits, no recomputation anywhere — because the handoff moved
/// exactly the arc the new backend now owns.
fn growth(ctx: &ExperimentContext, dir: &Path) -> Table {
    let n: usize = ctx.size(9, 7);
    let keys: Vec<QueryInstance> =
        (0..GROW_SET as u64).map(|i| generate(Family::Clustered, n, 500 + i)).collect();
    let reference: Vec<f64> =
        keys.iter().map(|inst| optimize_with(inst, &BnbConfig::paper()).cost()).collect();
    let tolerance = server_config().cache.validation_tolerance;

    let mut table = Table::new(
        format!("E17a: 2 → 3 fleet grow with warm partition handoff, {GROW_SET} keys, n = {n}"),
        ["phase", "requests", "hits", "cold", "hit rate", "moved keys"],
    );
    let mut row = |phase: &str, hits: u64, moved: String| {
        table.push_row([
            phase.to_string(),
            GROW_SET.to_string(),
            hits.to_string(),
            (GROW_SET as u64 - hits).to_string(),
            cell_f64(hits as f64 / GROW_SET as f64, 3),
            moved,
        ]);
    };

    let server_a = start_server(dir, "grow-a", None);
    let server_b = start_server(dir, "grow-b", None);
    let fleet2 = fleet_over(&[&server_a, &server_b], false);
    let (cold_served, cold_hits) = cycle(&fleet2, &keys, &reference, tolerance);
    assert_eq!(cold_hits, 0, "the first cycle is all cold");
    row("cold fill (fleet of 2)", cold_hits, "-".into());
    let (_, warm_hits) = cycle(&fleet2, &keys, &reference, tolerance);
    let pre_rate = warm_hits as f64 / GROW_SET as f64;
    assert_eq!(warm_hits as usize, GROW_SET, "a fixed working set hits fully once cached");
    let stats2 = fleet2.fleet_stats();
    assert_eq!((stats2.failovers, stats2.fallbacks), (0, 0), "healthy fleet");
    row("steady (fleet of 2)", warm_hits, "-".into());

    // Grow: announce the 3-backend layout to both incumbents and move
    // every entry the new ring re-homes. The export's ring labels must
    // be the same labels the clients route over, or the handoff would
    // park keys on arcs no client routes to.
    let server_c = start_server(dir, "grow-c", None);
    let servers = [&server_a, &server_b, &server_c];
    let labels = ring_labels(servers.len());
    let ring = HashRing::new(&labels);
    let mut moved_total = 0u64;
    for donor in 0..2usize {
        let mut client = Client::connect(servers[donor].listen_addr()).expect("connect donor");
        let request =
            ExportRequest { vnodes: DEFAULT_VNODES, keep: donor, backends: labels.clone() };
        let partition = client.export_partition(&request).expect("export partition");
        for inheritor in (0..servers.len()).filter(|&i| i != donor) {
            let entries: Vec<_> = partition
                .entries
                .iter()
                .filter(|e| ring.route(e.fingerprint) == inheritor)
                .cloned()
                .collect();
            if entries.is_empty() {
                continue;
            }
            // Growing the ring only reassigns arcs to the new vnodes, so
            // an entry that left its old home can only land on c.
            assert_eq!(
                inheritor, 2,
                "a grow-only resize moves keys exclusively onto the new backend"
            );
            let snapshot = PlanSnapshot { resolution: partition.resolution, entries };
            let mut receiver =
                Client::connect(servers[inheritor].listen_addr()).expect("connect inheritor");
            moved_total += receiver.import_partition(&snapshot).expect("import partition");
        }
    }

    let fleet3 = fleet_over(&servers, false);
    let owned_by_c = keys.iter().filter(|inst| fleet3.route(inst) == 2).count();
    // Precondition of the claim (asserted so a constant change cannot
    // hollow the experiment): the new backend owns a non-trivial slice.
    assert!(
        (1..GROW_SET).contains(&owned_by_c),
        "the new backend must own part (not all) of the {GROW_SET} keys, got {owned_by_c}"
    );
    assert_eq!(
        moved_total as usize, owned_by_c,
        "the handoff moves exactly the keys the new backend now owns"
    );

    let (post_served, post_hits) = cycle(&fleet3, &keys, &reference, tolerance);
    let post_rate = post_hits as f64 / GROW_SET as f64;
    // The acceptance bars: at least half the previously cached keys
    // still hit, and the hit rate is back within 5 points of the
    // pre-grow steady state within one cycle. With a warm handoff both
    // hold with room to spare — every key stays warm.
    assert!(
        post_hits as usize * 2 >= GROW_SET,
        "at least half the previously cached keys must survive the grow, got {post_hits}/{GROW_SET}"
    );
    assert!(
        post_rate >= pre_rate - 0.05,
        "hit rate must recover within 5 points in one cycle: {post_rate:.3} vs {pre_rate:.3}"
    );
    assert_eq!(post_hits as usize, GROW_SET, "a warm handoff keeps every key hitting");
    for (first, after) in cold_served.iter().zip(&post_served) {
        assert_eq!(
            after.cost.to_bits(),
            first.cost.to_bits(),
            "a handed-over key must serve the identical plan cost"
        );
    }
    let c_stats = server_c.stats();
    assert_eq!(c_stats.cache.misses, 0, "the new backend never recomputed a moved key");
    assert_eq!(c_stats.cache.hits as usize, owned_by_c, "c answered exactly its partition");
    let stats3 = fleet3.fleet_stats();
    assert_eq!(stats3.per_backend[2] as usize, owned_by_c, "routing agrees with the handoff ring");
    assert_eq!((stats3.failovers, stats3.fallbacks), (0, 0), "the grown fleet is healthy");
    row("first cycle after grow (fleet of 3)", post_hits, moved_total.to_string());

    // Contrast: modulo routing would have re-homed roughly 2/3 of the
    // keyspace on the same resize.
    let modulo_moved =
        post_served.iter().filter(|s| s.fingerprint % 2 != s.fingerprint % 3).count();
    server_a.shutdown();
    server_b.shutdown();
    server_c.shutdown();
    table.push_note(format!(
        "consistent hashing moved {moved_total} of {GROW_SET} keys (the new backend's arc); `fingerprint % N` routing would have re-homed {modulo_moved} of {GROW_SET} on the same 2 → 3 resize"
    ));
    table.push_note(
        "asserted: the handoff moves exactly the keys the new owner's ring arcs cover, every pre-grow key still serves as a cache hit with bit-identical cost, and the new backend records zero misses — nothing was recomputed",
    );
    table
}

/// A backend whose failures are a switch: `down` makes every request
/// fail with a typed transport error, exactly like an unplugged daemon,
/// without the nondeterminism of real sockets.
struct FlakyBackend {
    name: String,
    cold: ColdPlanner,
    down: Arc<AtomicBool>,
}

impl Planner for FlakyBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn plan(&self, instance: &QueryInstance) -> Result<ServedPlan, PlanError> {
        if self.down.load(Ordering::SeqCst) {
            return Err(PlanError::Transport(format!("{}: injected outage", self.name)));
        }
        self.cold.plan(instance)
    }

    fn stats(&self) -> PlannerStats {
        self.cold.stats()
    }
}

/// E17b: a flapping backend against the fleet's circuit breaker, with
/// exact counter accounting — threshold failures trip it, the cooldown
/// rejects without a connect attempt, one successful half-open probe
/// readmits it, and with every circuit open the fleet still fails typed.
fn breaker(ctx: &ExperimentContext) -> Table {
    let n: usize = ctx.size(8, 6);
    let config = BreakerConfig { failure_threshold: 2, cooldown_requests: 4 };
    let switches: Vec<Arc<AtomicBool>> = (0..3).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let backends: Vec<Box<dyn Planner>> = switches
        .iter()
        .enumerate()
        .map(|(i, down)| {
            Box::new(FlakyBackend {
                name: format!("flaky-{i}"),
                cold: ColdPlanner::new(BnbConfig::paper()),
                down: Arc::clone(down),
            }) as Box<dyn Planner>
        })
        .collect();
    let fleet = FleetPlanner::new(backends, Quantization::new(RESOLUTION))
        .expect("three backends")
        .with_breaker(config);
    let key = generate(Family::Clustered, n, 900);
    let optimal = optimize_with(&key, &BnbConfig::paper()).cost();
    let home = fleet.route(&key);

    let mut table = Table::new(
        format!(
            "E17b: circuit breaker on a flapping backend (threshold {}, cooldown {} checks)",
            config.failure_threshold, config.cooldown_requests
        ),
        ["phase", "requests", "failovers", "trips", "rejected", "probes", "readmissions", "state"],
    );
    let serve_ok = |times: usize| {
        for _ in 0..times {
            let served = fleet.plan(&key).expect("a healthy replica or failover serves");
            assert_eq!(served.cost.to_bits(), optimal.to_bits(), "cold plans are exact");
        }
    };
    let mut row = |fleet: &FleetPlanner, phase: &str, requests: usize| {
        let stats = fleet.breaker_stats()[home];
        table.push_row([
            phase.to_string(),
            requests.to_string(),
            fleet.fleet_stats().failovers.to_string(),
            stats.trips.to_string(),
            stats.rejected.to_string(),
            stats.probes.to_string(),
            stats.readmissions.to_string(),
            fleet.breaker_states()[home].to_string(),
        ]);
    };

    // Healthy: the home backend serves, its breaker stays closed.
    serve_ok(1);
    assert_eq!(fleet.fleet_stats().per_backend[home], 1);
    assert_eq!(fleet.breaker_stats()[home], Default::default());
    row(&fleet, "healthy", 1);

    // Outage: exactly `failure_threshold` failures trip the circuit;
    // every request is still served by failover.
    switches[home].store(true, Ordering::SeqCst);
    serve_ok(config.failure_threshold as usize);
    assert_eq!(fleet.breaker_states()[home], BreakerState::Open, "threshold failures trip");
    assert_eq!(fleet.breaker_stats()[home].trips, 1);
    assert_eq!(fleet.fleet_stats().failovers, u64::from(config.failure_threshold));
    row(&fleet, "outage", config.failure_threshold as usize);

    // Recovery, cooldown window: the backend is back up, but the open
    // circuit rejects it without a connect attempt until the cooldown
    // elapses — `cooldown_requests - 1` rejections, then the next
    // eligibility check is the probe.
    switches[home].store(false, Ordering::SeqCst);
    let cooldown = config.cooldown_requests as usize - 1;
    serve_ok(cooldown);
    assert_eq!(fleet.breaker_states()[home], BreakerState::Open, "still cooling down");
    assert_eq!(fleet.breaker_stats()[home].rejected, cooldown as u64);
    row(&fleet, "cooling down", cooldown);

    // The probe: one request is admitted half-open, succeeds, and
    // readmits the backend — served by its home again.
    let before = fleet.fleet_stats().per_backend[home];
    serve_ok(1);
    let stats = fleet.breaker_stats()[home];
    assert_eq!(
        (stats.probes, stats.readmissions),
        (1, 1),
        "one successful half-open probe readmits the backend"
    );
    assert_eq!(fleet.breaker_states()[home], BreakerState::Closed);
    assert_eq!(fleet.fleet_stats().per_backend[home], before + 1, "home serves again");
    row(&fleet, "half-open probe", 1);

    // Total outage: with every backend down and no fallback, each walk
    // fails typed; once every circuit trips the fleet reports the
    // all-ejected error — an error, never a panic.
    for switch in &switches {
        switch.store(true, Ordering::SeqCst);
    }
    for _ in 0..config.failure_threshold {
        match fleet.plan(&key) {
            Err(PlanError::Transport(_)) => {}
            other => panic!("expected a typed transport error, got {other:?}"),
        }
    }
    match fleet.plan(&key) {
        Err(PlanError::Backend(message)) => {
            assert_eq!(message, "every backend is ejected by its circuit breaker");
        }
        other => panic!("expected the all-ejected error, got {other:?}"),
    }
    assert!(fleet.breaker_states().iter().all(|s| *s != BreakerState::Closed));
    row(&fleet, "every backend down", config.failure_threshold as usize + 1);

    table.push_note(
        "every counter is asserted exactly: trips = 1 after threshold consecutive failures, cooldown - 1 rejections without a connect attempt, one probe, one readmission, and the home backend serving again immediately after",
    );
    table.push_note(
        "with all circuits open and no fallback the fleet returns the typed all-ejected backend error — the failure surface never widens to a panic",
    );
    table
}

/// E17c: a daemon injecting drop/delay/truncate faults into its own
/// response frames, driven through a fleet with a cold fallback. Every
/// request is served, every fault surfaces as a typed error absorbed by
/// failover/fallback, and the server's request parsing stays pristine.
fn chaos(ctx: &ExperimentContext, dir: &Path) -> Table {
    let n: usize = ctx.size(7, 6);
    let requests: usize = ctx.size(64, 40);
    let chaos_seed = 11u64;
    let stream: Vec<QueryInstance> = DriftStream::new(DriftConfig {
        queries: 8,
        ..DriftConfig::new(Family::Euclidean, n, 53, requests)
    })
    .collect();
    let reference: Vec<f64> =
        stream.iter().map(|inst| optimize_with(inst, &BnbConfig::paper()).cost()).collect();
    let tolerance = server_config().cache.validation_tolerance;

    let server = start_server(dir, "chaos", Some(FaultProfile::moderate(chaos_seed)));
    let fleet = fleet_over(&[&server], true);
    let (mut hits, mut cold) = (0u64, 0u64);
    for (inst, &optimal) in stream.iter().zip(&reference) {
        let served = fleet.plan(inst).expect("the fallback absorbs every fault");
        let deviation = (served.cost - optimal) / optimal.abs().max(1e-300);
        assert!(deviation <= tolerance + 1e-9, "chaos must not corrupt a served plan");
        match served.source {
            ServeSource::CacheHit => hits += 1,
            _ => cold += 1,
        }
    }
    let stats = fleet.fleet_stats();
    let breaker = fleet.breaker_stats()[0];
    assert_eq!(stats.errors, 0, "with a fallback no request is lost under chaos");
    assert!(stats.fallbacks >= 1, "moderate chaos must surface at least one fault");
    assert!(hits >= 1, "the cache still warms through the fault schedule");
    let server_stats = server.shutdown();
    assert_eq!(
        server_stats.protocol_errors, 0,
        "egress-only faults must leave request parsing clean"
    );

    let mut table = Table::new(
        format!(
            "E17c: chaos battery, seed {chaos_seed} (drop 1/16, delay 1/8, truncate 1/24), {requests} requests over 1 chaotic backend + cold fallback"
        ),
        ["requests", "cache hits", "cold/fallback", "typed faults absorbed", "breaker trips", "protocol errors"],
    );
    table.push_row([
        requests.to_string(),
        hits.to_string(),
        cold.to_string(),
        stats.fallbacks.to_string(),
        breaker.trips.to_string(),
        server_stats.protocol_errors.to_string(),
    ]);
    table.push_note(
        "asserted: zero panics (the run completes), zero fleet errors (the fallback serves every faulted request), zero server protocol errors (faults are injected on the response path only), and every served plan within the validation tolerance of its fresh optimum",
    );
    table.push_note(
        "the fault schedule is a pure function of the chaos seed and the connection accept index, so this battery replays identically",
    );
    table
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let dir = temp_dir();
    let tables = vec![growth(ctx, &dir), breaker(ctx), chaos(ctx, &dir)];
    std::fs::remove_dir_all(&dir).ok();
    tables
}
