//! E3 — Pruning effectiveness: per-lemma ablation of the search-space
//! reduction, the heart of the brief announcement's §3.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, cell_ms, Table};
use dsq_core::{optimize_with, BnbConfig, SearchStats};
use dsq_workloads::{Family, Sweep};
use std::time::Instant;

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e3",
        title: "Per-lemma pruning ablation",
        claim: "\"the properties discussed in this work allow a branch-and-bound approach to be very efficient\" (abstract); Lemmas 1–3 (§3)",
        run,
    }
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let sizes: Vec<usize> = ctx.size(vec![10, 12], vec![9, 10]);
    let seeds: u64 = ctx.size(5, 2);
    let configs: [(&str, BnbConfig); 6] = [
        ("incumbent-only (L1)", BnbConfig::incumbent_only()),
        ("L1+L2 (no backjump)", BnbConfig::without_backjump()),
        ("L1+L3 (no ε̄)", BnbConfig::without_epsilon_bar()),
        ("paper (L1+L2+L3)", BnbConfig::paper()),
        ("paper with loose ε̄", BnbConfig { tight_epsilon_bar: false, ..BnbConfig::paper() }),
        ("extended (+seed +LB)", BnbConfig::extended()),
    ];

    let mut tables = Vec::new();
    for family in [Family::UniformRandom, Family::Clustered] {
        for &n in &sizes {
            let points = Sweep::new().families([family]).sizes([n]).seeds(0..seeds).build();
            let mut table = Table::new(
                format!("E3: nodes visited by configuration ({}, n={n})", family.name()),
                [
                    "configuration",
                    "nodes (mean)",
                    "vs L1-only",
                    "closures",
                    "backjumps",
                    "time (mean)",
                ],
            );
            let mut baseline_nodes = 0.0f64;
            for (name, cfg) in &configs {
                let mut nodes = 0u64;
                let mut closures = 0u64;
                let mut backjumps = 0u64;
                let mut elapsed = std::time::Duration::ZERO;
                for point in &points {
                    let t0 = Instant::now();
                    let result = optimize_with(&point.instance, cfg);
                    elapsed += t0.elapsed();
                    nodes += result.stats().nodes_visited;
                    closures += result.stats().lemma2_closures;
                    backjumps += result.stats().backjumps;
                }
                let mean_nodes = nodes as f64 / points.len() as f64;
                if *name == "incumbent-only (L1)" {
                    baseline_nodes = mean_nodes;
                }
                table.push_row([
                    name.to_string(),
                    cell_f64(mean_nodes, 1),
                    format!("{}x", cell_f64(baseline_nodes / mean_nodes.max(1.0), 2)),
                    (closures / points.len() as u64).to_string(),
                    (backjumps / points.len() as u64).to_string(),
                    format!("{} ms", cell_ms(elapsed / points.len() as u32)),
                ]);
            }
            table.push_note(format!(
                "unpruned DFS would visit {} prefixes at n={n}; {seeds} seeds",
                SearchStats::unpruned_prefix_count(n)
            ));
            tables.push(table);
        }
    }
    tables
}
