//! The reconstructed evaluation suite (see DESIGN.md §5 for the index).

pub mod e10_blocks;
pub mod e11_anytime;
pub mod e12_latency;
pub mod e13_service;
pub mod e14_server;
pub mod e15_fleet;
pub mod e16_tiered;
pub mod e17_resilience;
pub mod e18_telemetry;
pub mod e1_optimality;
pub mod e2_scaling;
pub mod e3_pruning;
pub mod e4_quality;
pub mod e5_cost_model;
pub mod e6_heterogeneity;
pub mod e7_generalizations;
pub mod e8_runtime;
pub mod e9_btsp;
