//! E9 — The bottleneck-TSP hard core: behaviour of the branch-and-bound
//! on the reduction instances (σ = 1, c = 0).

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_ms, Table};
use dsq_baselines::{btsp_lower_bound, btsp_path_exact, btsp_query_instance};
use dsq_core::optimize;
use dsq_netsim::uniform_random;
use std::time::{Duration, Instant};

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e9",
        title: "Bottleneck-TSP reduction instances",
        claim: "\"when (i) setting all service selectivities to 1 and service processing costs to 0 … the optimal service linear ordering problem is the same as the bottleneck TSP one\" (§1)",
        run,
    }
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let sizes: Vec<usize> = ctx.size(vec![6, 8, 10, 12], vec![6, 8]);
    let seeds: u64 = ctx.size(5, 2);

    let mut table = Table::new(
        "E9: B&B on σ=1/c=0 instances vs the threshold BTSP solver",
        [
            "n",
            "instances",
            "matches",
            "mean B&B nodes",
            "B&B time",
            "threshold-solver time",
            "LB tight count",
        ],
    );
    for &n in &sizes {
        let mut matches = 0u64;
        let mut nodes = 0u64;
        let mut bnb_time = Duration::ZERO;
        let mut btsp_time = Duration::ZERO;
        let mut lb_tight = 0u64;
        for seed in 0..seeds {
            let comm = uniform_random(n, 1.0, 100.0, false, 9_000 + seed).into_comm();
            let inst = btsp_query_instance(&comm);

            let t0 = Instant::now();
            let bnb = optimize(&inst);
            bnb_time += t0.elapsed();
            nodes += bnb.stats().nodes_visited;

            let t0 = Instant::now();
            let exact = btsp_path_exact(&comm).expect("within BTSP limit");
            btsp_time += t0.elapsed();

            matches += u64::from(
                (bnb.cost() - exact.bottleneck()).abs() <= 1e-9 * exact.bottleneck().max(1.0),
            );
            lb_tight += u64::from(
                (btsp_lower_bound(&comm) - exact.bottleneck()).abs()
                    <= 1e-9 * exact.bottleneck().max(1.0),
            );
        }
        table.push_row([
            n.to_string(),
            seeds.to_string(),
            matches.to_string(),
            (nodes / seeds).to_string(),
            format!("{} ms", cell_ms(bnb_time / seeds as u32)),
            format!("{} ms", cell_ms(btsp_time / seeds as u32)),
            format!("{lb_tight}/{seeds}"),
        ]);
    }
    table.push_note("matches = B&B optimum equals the independent threshold+DP solver; LB tight = the cheap degree bound already equals the optimum");
    vec![table]
}
