//! E11 — Anytime behaviour of the budgeted branch-and-bound: how good is
//! the incumbent when the search is stopped early? (An extension beyond
//! the brief announcement: the search's first incumbents come from the
//! cheapest-pair/cheapest-successor dives the paper prescribes, so this
//! measures how quickly those dives approach the optimum.)

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, Table};
use dsq_core::{optimize_with, BnbConfig};
use dsq_workloads::{generate, Family};

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e11",
        title: "Anytime quality of the budgeted search",
        claim: "extension: incumbent quality vs node budget on the bottleneck-TSP hard core",
        run,
    }
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let n: usize = ctx.size(13, 10);
    let seeds: u64 = ctx.size(5, 2);
    let budgets: [Option<u64>; 6] = [Some(16), Some(64), Some(256), Some(1024), Some(4096), None];

    let mut table = Table::new(
        format!("E11: incumbent quality vs node budget (btsp-hard, n={n}, {seeds} seeds)"),
        ["node budget", "mean cost ratio", "max cost ratio", "proven optimal"],
    );
    // Reference optima once per seed.
    let instances: Vec<_> = (0..seeds).map(|s| generate(Family::BtspHard, n, s)).collect();
    let optima: Vec<f64> =
        instances.iter().map(|inst| optimize_with(inst, &BnbConfig::paper()).cost()).collect();

    for budget in budgets {
        let mut ratios = Vec::new();
        let mut proven = 0u64;
        for (inst, &opt) in instances.iter().zip(&optima) {
            let cfg = match budget {
                Some(nodes) => BnbConfig::paper().with_node_limit(nodes),
                None => BnbConfig::paper(),
            };
            let result = optimize_with(inst, &cfg);
            ratios.push(result.cost() / opt);
            proven += u64::from(result.is_proven_optimal());
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().copied().fold(0.0f64, f64::max);
        table.push_row([
            budget.map_or("unlimited".into(), |b| b.to_string()),
            cell_f64(mean, 4),
            cell_f64(max, 4),
            format!("{proven}/{seeds}"),
        ]);
    }
    table.push_note(
        "the search always returns its best incumbent when interrupted; ratios must be ≥ 1 and reach 1.0000 with the full budget",
    );
    vec![table]
}
