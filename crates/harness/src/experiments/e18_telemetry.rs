//! E18 — End-to-end telemetry (extension): the log-linear histogram
//! answers quantile queries within its documented relative-error bound
//! and merges losslessly; an open-loop soak against a live daemon
//! completes with zero protocol errors and a bounded p99; and the
//! server's per-stage latency decomposition (parse, queue wait, plan,
//! and flush, read back over the `metrics` wire verb) accounts for the
//! client-observed round-trip time within tolerance — the stages nest
//! inside the RTT, and what they miss is bounded wire-and-wakeup slack.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, Table};
use dsq_server::{Client, ListenAddr, LoadgenConfig, RequestClass, Response, Server, ServerConfig};
use dsq_telemetry::Histogram;
use dsq_workloads::{generate, Family};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e18",
        title: "End-to-end telemetry: histogram bounds, stage accounting, open-loop soak (extension)",
        claim: "telemetry extension: the mergeable log-linear histogram reports every probed quantile within its documented relative-error bound and a merge is indistinguishable from recording into one histogram; the server's stage histograms (parse + queue wait + plan + flush) sum to the client-observed mean RTT within a bounded wire-and-wakeup slack; and an open-loop Poisson soak finishes with zero protocol errors and a bounded p99",
        run,
    }
}

fn quick_server() -> ServerConfig {
    ServerConfig {
        workers: NonZeroUsize::new(1).expect("non-zero"), // single-core CI
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    }
}

/// The exact quantile a histogram estimates: the sample at rank
/// `ceil(p * len)` of the sorted data (1-indexed), the same rank rule
/// the histogram documents.
fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// E18a: quantile accuracy on three shapes of data — uniform, a
/// heavy-tailed power mixture, and a point mass — plus the merge
/// identity: recording a stream split across two histograms and merging
/// them yields byte-identical quantiles to recording it into one.
fn accuracy(ctx: &ExperimentContext) -> Table {
    let samples_per_shape: usize = ctx.size(40_000, 8_000);
    let mut rng = StdRng::seed_from_u64(18);
    let shapes: [(&str, Vec<u64>); 3] = [
        (
            "uniform 1..1e6",
            (0..samples_per_shape).map(|_| rng.gen_range(1..1_000_000u64)).collect(),
        ),
        (
            "heavy tail (1.9^k)",
            (0..samples_per_shape).map(|_| 1.9f64.powi(rng.gen_range(0..30)) as u64 + 1).collect(),
        ),
        ("point mass 4096", vec![4096u64; samples_per_shape]),
    ];

    let mut table = Table::new(
        format!("E18a: histogram quantile error vs exact, {samples_per_shape} samples per shape"),
        ["shape", "quantile", "exact", "histogram", "relative error", "bound"],
    );
    let probe = [0.50, 0.90, 0.99, 0.999];
    for (name, samples) in &shapes {
        let whole = Histogram::new();
        let (left, right) = (Histogram::new(), Histogram::new());
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 { &left } else { &right }.record(v);
        }
        left.merge(&right);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let bound = whole.relative_error_bound();
        for &p in &probe {
            let exact = exact_quantile(&sorted, p);
            let estimate = whole.quantile(p);
            let error = (estimate as f64 - exact as f64).abs() / exact as f64;
            assert!(
                error <= bound + 1e-12,
                "{name} p{p}: estimate {estimate} vs exact {exact} (error {error:.5} > bound {bound:.5})"
            );
            // The merge identity: the split-and-merged histogram holds
            // the same bucket tallies, so every quantile matches the
            // single-histogram answer exactly, not approximately.
            assert_eq!(
                left.quantile(p),
                estimate,
                "{name} p{p}: merge must be indistinguishable from recording into one histogram"
            );
            table.push_row([
                name.to_string(),
                format!("p{}", (p * 1000.0).round() / 10.0),
                exact.to_string(),
                estimate.to_string(),
                cell_f64(error, 5),
                cell_f64(bound, 5),
            ]);
        }
        assert_eq!((left.count(), left.sum()), (whole.count(), whole.sum()));
    }
    table.push_note(
        "asserted: every probed quantile lands within the histogram's documented relative-error bound (1/grid, 1/64 at the default grid), and merged counts, sums, and quantiles are bit-identical to a single-histogram recording",
    );
    table
}

/// Pulls `count` and `sum` off one `histogram NAME count N sum S ...`
/// line of the `# dsq-metrics v1` exposition document.
fn histogram_stat(exposition: &str, name: &str) -> (u64, u64) {
    let prefix = format!("histogram {name} count ");
    let line = exposition
        .lines()
        .find(|l| l.starts_with(&prefix))
        .unwrap_or_else(|| panic!("no `{name}` histogram in:\n{exposition}"));
    let mut tokens = line.split_whitespace().skip(3);
    let count = tokens.next().and_then(|v| v.parse().ok()).expect("count field");
    assert_eq!(tokens.next(), Some("sum"), "exposition grammar: {line}");
    let sum = tokens.next().and_then(|v| v.parse().ok()).expect("sum field");
    (count, sum)
}

/// E18b: the stage accounting claim. Drive a warm serve loop measuring
/// RTT client-side, read the server's stage histograms back over the
/// `metrics` verb, and check the decomposition: the four stages nest
/// inside every request's RTT (so their mean sum cannot exceed the mean
/// RTT), and the unaccounted remainder — wire transfer plus reactor
/// wakeup — stays within a bounded slack.
fn stage_accounting(ctx: &ExperimentContext) -> Table {
    let n: usize = ctx.size(7, 6);
    let rounds: usize = ctx.size(40, 15);
    let keys: Vec<_> = (0..8u64).map(|s| generate(Family::Clustered, n, 1800 + s)).collect();
    let server = Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &quick_server())
        .expect("server starts");
    let mut client = Client::connect(server.listen_addr()).expect("connect");

    // Warm the cache first so the measured loop is the steady state the
    // hot-path overhead budget is written against.
    for key in &keys {
        assert!(matches!(client.optimize(key).expect("warm"), Response::Served { .. }));
    }
    let mut rtt_total = Duration::ZERO;
    let measured = (rounds * keys.len()) as u64;
    for round in 0..rounds {
        for key in &keys {
            let start = Instant::now();
            let response = client.optimize(key).expect("steady serve");
            rtt_total += start.elapsed();
            assert!(
                matches!(
                    response,
                    Response::Served { source: dsq_service::ServeSource::CacheHit, .. }
                ),
                "round {round}: the steady loop must stay on the hit path, got {response:?}"
            );
        }
    }
    let exposition = client.metrics().expect("metrics verb");

    let total = measured + keys.len() as u64; // warmup requests recorded too
    let mut stage_mean_sum = 0.0f64;
    let mut table = Table::new(
        format!("E18b: per-stage decomposition of {measured} cache-hit RTTs, n = {n}"),
        ["stage", "count", "mean us", "share of RTT"],
    );
    let rtt_mean = rtt_total.as_secs_f64() * 1e9 / measured as f64;
    for stage in ["parse_ns", "queue_wait_ns", "plan_ns", "flush_ns"] {
        let (count, sum) = histogram_stat(&exposition, &format!("server.stage.{stage}"));
        assert_eq!(count, total, "every request must record every stage exactly once");
        let mean = sum as f64 / count as f64;
        stage_mean_sum += mean;
        table.push_row([
            stage.to_string(),
            count.to_string(),
            cell_f64(mean / 1e3, 1),
            cell_f64(mean / rtt_mean, 3),
        ]);
    }
    table.push_row([
        "client RTT".to_string(),
        measured.to_string(),
        cell_f64(rtt_mean / 1e3, 1),
        cell_f64(1.0, 3),
    ]);

    // The nesting bound: each stage interval lies inside its request's
    // RTT window, so the stage means cannot sum past the mean RTT —
    // with a small allowance because the stage means also fold in the
    // slightly slower warmup requests the RTT loop did not time.
    assert!(
        stage_mean_sum <= rtt_mean * 1.10 + 200_000.0,
        "stages nest inside the RTT: stage sum {stage_mean_sum:.0}ns vs mean RTT {rtt_mean:.0}ns"
    );
    // The coverage bound: what the stages miss is wire transfer and the
    // reactor's completion wakeup, bounded slack on loopback — the
    // decomposition must account for the RTT, not a sliver of it.
    let slack = (rtt_mean * 0.5).max(5_000_000.0);
    assert!(
        rtt_mean <= stage_mean_sum + slack,
        "unaccounted RTT too large: mean RTT {rtt_mean:.0}ns vs stage sum {stage_mean_sum:.0}ns"
    );
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0);
    table.push_note(format!(
        "asserted: each stage recorded exactly once per request, stage means sum to {:.1}us against a {:.1}us mean RTT — inside the nesting bound and covering it within max(50% of RTT, 5ms) wire-and-wakeup slack",
        stage_mean_sum / 1e3,
        rtt_mean / 1e3,
    ));
    table
}

/// E18c: a short open-loop soak. Poisson arrivals per request class
/// against a live daemon; the run must complete with zero protocol
/// errors, a fully accounted breakdown, and p99 under a CI-safe bound.
fn soak(ctx: &ExperimentContext) -> Table {
    let requests: usize = ctx.size(240, 80);
    let rate = 400.0;
    let p99_bound = Duration::from_millis(250);
    let server = Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &quick_server())
        .expect("server starts");
    let config = LoadgenConfig { rate, requests, n: 6, seed: 18, ..LoadgenConfig::default() };
    let report = config.run(server.listen_addr()).expect("soak completes");

    let mut table = Table::new(
        format!(
            "E18c: open-loop soak, {rate} req/s Poisson per class, {requests} requests per class"
        ),
        ["class", "sent", "hit", "warm", "cold", "busy", "p50 us", "p99 us", "p999 us"],
    );
    for class in &report.classes {
        assert_eq!(class.sent, requests as u64, "open-loop: every scheduled request is sent");
        assert_eq!(
            class.hits + class.warm + class.cold + class.busy + class.errors,
            class.sent,
            "{}: the breakdown must account for every request",
            class.class
        );
        assert_eq!(class.protocol_errors, 0, "{}: zero protocol errors", class.class);
        assert!(class.p99_ns > 0, "{}: a served class has non-zero p99", class.class);
        assert!(
            class.p50_ns <= class.p99_ns && class.p99_ns <= class.p999_ns,
            "{}: quantiles are monotone",
            class.class
        );
        assert!(
            class.p99_ns <= p99_bound.as_nanos() as u64,
            "{}: p99 {}ns breaches the {:?} soak bound",
            class.class,
            class.p99_ns,
            p99_bound
        );
        table.push_row([
            class.class.to_string(),
            class.sent.to_string(),
            class.hits.to_string(),
            class.warm.to_string(),
            class.cold.to_string(),
            class.busy.to_string(),
            cell_f64(class.p50_ns as f64 / 1e3, 1),
            cell_f64(class.p99_ns as f64 / 1e3, 1),
            cell_f64(class.p999_ns as f64 / 1e3, 1),
        ]);
    }
    assert_eq!(report.classes.len(), RequestClass::ALL.len(), "all three classes soaked");
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0, "the server agrees: nothing malformed on the wire");
    table.push_note(
        "asserted: every scheduled request sent and accounted for (hit + warm + cold + busy + error = sent), zero protocol errors on both ends, monotone per-class quantiles, and p99 <= 250ms per class; latency is measured from each request's scheduled (Poisson) send time, so server stalls cannot hide in generator back-pressure",
    );
    table
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    vec![accuracy(ctx), stage_accounting(ctx), soak(ctx)]
}
