//! E15 — Fingerprint-sharded fleet (extension): routing requests across
//! two plan-serving daemons by canonical fingerprint partitions the
//! cache keyspace, so a working set that thrashes one server's LRU fits
//! a fleet of two; killing a replica mid-stream fails its partition over
//! to the survivor, and with every backend down the local cold fallback
//! still completes the stream. Every claim is asserted per request, not
//! just tabulated.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, Table};
use dsq_core::{optimize_with, BnbConfig, Quantization, QueryInstance};
use dsq_server::{ListenAddr, RemotePlanner, Server, ServerConfig};
use dsq_service::{CacheConfig, ColdPlanner, FleetPlanner, Planner, ServeSource};
use dsq_workloads::{DriftConfig, DriftStream, Family};
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e15",
        title: "Fingerprint-sharded fleet: cache partitioning, failover, fallback (extension)",
        claim: "fleet extension: sharding requests across plan-serving daemons by canonical fingerprint gives each backend a disjoint, stable keyspace (aggregate cache capacity scales with the fleet), failover completes the stream with correct plans when a replica is killed mid-stream, and a local cold fallback serves when every backend is down",
        run,
    }
}

/// Serving quantization shared by routing and the backend caches (the
/// e13/e14 serving knobs).
const RESOLUTION: f64 = 0.2;

/// Per-backend LRU capacity: deliberately **smaller** than the stream's
/// working set, so one server thrashes while the partitioned fleet fits.
const CAPACITY: usize = 8;

/// Distinct base queries cycled round-robin — the working set.
const WORKING_SET: usize = 12;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsq-e15-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create e15 temp dir");
    dir
}

fn server_config() -> ServerConfig {
    ServerConfig {
        workers: NonZeroUsize::new(1).expect("non-zero"), // single-core CI
        cache: CacheConfig {
            shards: 1,
            capacity_per_shard: CAPACITY,
            quantization: Quantization::new(RESOLUTION),
            probes: 1, // the adversary here is capacity, not boundaries
            ..CacheConfig::default()
        },
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    }
}

fn start_server(dir: &Path, tag: &str) -> Server {
    Server::start(&ListenAddr::Unix(dir.join(format!("e15-{tag}.sock"))), &server_config())
        .expect("server starts")
}

fn stream(n: usize, requests: usize) -> Vec<QueryInstance> {
    let config =
        DriftConfig { queries: WORKING_SET, ..DriftConfig::new(Family::BtspHard, n, 29, requests) };
    DriftStream::new(config).collect()
}

/// Drives `requests` through `planner`, asserting every served plan's
/// cost against the fresh optimum; returns (hits, warm, cold, max dev).
fn drive(
    planner: &dyn Planner,
    requests: &[QueryInstance],
    reference: &[f64],
    tolerance: f64,
) -> (u64, u64, u64, f64) {
    let (mut hits, mut warm, mut cold) = (0u64, 0u64, 0u64);
    let mut max_deviation = 0.0f64;
    for (inst, &optimal) in requests.iter().zip(reference) {
        let served = planner.plan(inst).expect("the fleet (or its fallback) always serves");
        let deviation = (served.cost - optimal) / optimal.abs().max(1e-300);
        max_deviation = max_deviation.max(deviation);
        assert!(
            deviation <= tolerance + 1e-9,
            "served plan deviates {deviation:.4} > tolerance {tolerance} on {}",
            inst.name()
        );
        match served.source {
            ServeSource::CacheHit => hits += 1,
            ServeSource::WarmStart => warm += 1,
            ServeSource::Cold => cold += 1,
        }
    }
    (hits, warm, cold, max_deviation)
}

fn fleet_over<'a>(servers: &[&Server], with_fallback: bool) -> FleetPlanner<'a> {
    let backends: Vec<Box<dyn Planner>> = servers
        .iter()
        .map(|s| Box::new(RemotePlanner::new(s.listen_addr().clone())) as Box<dyn Planner>)
        .collect();
    // Fixed ring labels: the default labels embed the pid-scoped socket
    // paths, which would reshuffle the keyspace split every run. Pinning
    // them keeps the 12-key partition (and so every assert below)
    // deterministic.
    let labels: Vec<String> = (0..servers.len()).map(|i| format!("shard-{i}")).collect();
    let fleet = FleetPlanner::new(backends, Quantization::new(RESOLUTION))
        .expect("the experiment always routes over at least one backend")
        .with_ring_labels(&labels);
    if with_fallback {
        fleet.with_fallback(Box::new(ColdPlanner::new(BnbConfig::paper())))
    } else {
        fleet
    }
}

/// E15a: the same drift stream against one server and against a
/// 2-server fleet with identical per-backend caches.
fn partitioning(ctx: &ExperimentContext, dir: &Path) -> Table {
    let n: usize = ctx.size(10, 8);
    let cycles: usize = ctx.size(12, 4);
    let requests = WORKING_SET * cycles;
    let stream = stream(n, requests);
    let tolerance = server_config().cache.validation_tolerance;
    let reference: Vec<f64> =
        stream.iter().map(|inst| optimize_with(inst, &BnbConfig::paper()).cost()).collect();

    let mut table = Table::new(
        format!(
            "E15a: btsp-hard drift, {WORKING_SET} base queries × {cycles} cycles, n = {n}, per-backend LRU capacity {CAPACITY}"
        ),
        ["mode", "requests", "hits", "warm", "cold", "hit rate", "max dev"],
    );

    // Single server: the 12-key round-robin working set cycles through
    // an 8-slot LRU, evicting every key before its reuse.
    let server = start_server(dir, "single");
    let single = fleet_over(&[&server], false);
    let (hits, warm, cold, max_dev) = drive(&single, &stream, &reference, tolerance);
    let single_rate = hits as f64 / requests as f64;
    table.push_row([
        "single server".into(),
        requests.to_string(),
        hits.to_string(),
        warm.to_string(),
        cold.to_string(),
        cell_f64(single_rate, 3),
        cell_f64(max_dev, 4),
    ]);
    server.shutdown();

    // Fleet of two: fingerprint routing splits the 12 keys across the
    // backends, so each partition fits its server's LRU.
    let server_a = start_server(dir, "a");
    let server_b = start_server(dir, "b");
    let fleet = fleet_over(&[&server_a, &server_b], false);
    // Precondition of the claim (asserted, so a workload change cannot
    // silently hollow the experiment): both partitions are non-empty
    // and small enough to fit one backend's cache.
    let mut partition = [0usize; 2];
    for inst in stream.iter().take(WORKING_SET) {
        partition[fleet.route(inst)] += 1;
    }
    assert!(
        partition.iter().all(|&keys| (1..=CAPACITY).contains(&keys)),
        "keyspace split {partition:?} must be non-trivial and fit the {CAPACITY}-slot caches"
    );
    let (hits, warm, cold, max_dev) = drive(&fleet, &stream, &reference, tolerance);
    let fleet_rate = hits as f64 / requests as f64;
    table.push_row([
        "fleet of 2".into(),
        requests.to_string(),
        hits.to_string(),
        warm.to_string(),
        cold.to_string(),
        cell_f64(fleet_rate, 3),
        cell_f64(max_dev, 4),
    ]);
    let fleet_stats = fleet.fleet_stats();
    for (label, server, served) in
        [("a", &server_a, fleet_stats.per_backend[0]), ("b", &server_b, fleet_stats.per_backend[1])]
    {
        let stats = server.stats();
        assert_eq!(stats.busy_rejections, 0, "a sequential client never overflows the queue");
        table.push_row([
            format!("  backend {label}"),
            served.to_string(),
            stats.cache.hits.to_string(),
            stats.cache.warm_starts.to_string(),
            stats.cache.misses.to_string(),
            cell_f64(stats.cache.hit_rate(), 3),
            "-".into(),
        ]);
    }
    server_a.shutdown();
    server_b.shutdown();

    // The headline partitioning claim: the fleet's steady-state hit
    // rate is at least the single server's on the same stream — and
    // since the partitions fit while the whole set does not, decisively
    // above it.
    assert!(
        fleet_rate >= single_rate,
        "fleet hit rate {fleet_rate:.3} fell below the single server's {single_rate:.3}"
    );
    assert!(single_rate < 0.2, "the working set must thrash one server, got {single_rate:.3}");
    assert!(fleet_rate > 0.6, "the partitioned fleet must mostly hit, got {fleet_rate:.3}");
    assert_eq!((fleet_stats.failovers, fleet_stats.fallbacks), (0, 0), "healthy fleet");
    table.push_note(
        "identical drift stream, identical per-backend cache configuration (1 shard × 8 entries, 20% quantization); the only difference is fingerprint routing across two backends",
    );
    table.push_note(
        "max dev = worst relative gap between a served plan's cost and the instance's fresh optimum, asserted ≤ the 5% validation tolerance on every request; fleet ≥ single hit rate asserted",
    );
    table
}

/// E15b: a replica killed mid-stream, then the whole fleet killed — the
/// stream must complete via failover, then via the local cold fallback.
fn failover(ctx: &ExperimentContext, dir: &Path) -> Table {
    let n: usize = ctx.size(10, 8);
    let cycles: usize = ctx.size(6, 2);
    let half = WORKING_SET * cycles;
    let tail: usize = ctx.size(12, 6);
    let stream = stream(n, 2 * half + tail);
    let tolerance = server_config().cache.validation_tolerance;
    let reference: Vec<f64> =
        stream.iter().map(|inst| optimize_with(inst, &BnbConfig::paper()).cost()).collect();

    let server_a = start_server(dir, "fo-a");
    let server_b = start_server(dir, "fo-b");
    let fleet = fleet_over(&[&server_a, &server_b], true);

    let mut table = Table::new(
        format!(
            "E15b: replica kill mid-stream, {} requests over fleet of 2 + cold fallback",
            2 * half + tail
        ),
        ["phase", "requests", "hits", "warm", "cold", "failovers", "fallbacks", "max dev"],
    );
    let mut row = |phase: &str, slice: std::ops::Range<usize>, outcome: (u64, u64, u64, f64)| {
        let stats = fleet.fleet_stats();
        table.push_row([
            phase.to_string(),
            slice.len().to_string(),
            outcome.0.to_string(),
            outcome.1.to_string(),
            outcome.2.to_string(),
            stats.failovers.to_string(),
            stats.fallbacks.to_string(),
            cell_f64(outcome.3, 4),
        ]);
    };

    // Phase 1: both replicas up.
    let outcome = drive(&fleet, &stream[..half], &reference[..half], tolerance);
    assert_eq!(fleet.fleet_stats().failovers, 0, "healthy fleet does not fail over");
    row("both up", 0..half, outcome);

    // Phase 2: kill replica B mid-stream. Its partition must fail over
    // to A — every request still served, still within tolerance.
    let homed_on_b: u64 = stream[half..2 * half].iter().map(|inst| fleet.route(inst) as u64).sum();
    server_b.shutdown();
    let outcome = drive(&fleet, &stream[half..2 * half], &reference[half..2 * half], tolerance);
    let stats = fleet.fleet_stats();
    assert_eq!(
        stats.failovers, homed_on_b,
        "every request homed on the dead replica must fail over, exactly"
    );
    assert!(stats.failovers >= 1, "the killed replica's partition must be non-empty");
    assert_eq!(stats.fallbacks, 0, "the surviving replica absorbs the whole stream");
    row("replica b killed", half..2 * half, outcome);

    // Phase 3: kill the last replica too; the local cold fallback
    // completes the stream.
    server_a.shutdown();
    let outcome = drive(&fleet, &stream[2 * half..], &reference[2 * half..], tolerance);
    let stats = fleet.fleet_stats();
    assert_eq!(stats.fallbacks, tail as u64, "every post-kill request lands on the fallback");
    assert_eq!(outcome.2, tail as u64, "the fallback optimizes cold");
    row("fleet killed", 2 * half..2 * half + tail, outcome);

    table.push_note(
        "the kill is a graceful-drain shutdown of the live process; the fleet's next request to it fails at the transport and is re-routed (failovers/fallbacks are cumulative counters)",
    );
    table.push_note(
        "every request of every phase is asserted within the validation tolerance of its fresh optimum — failover and fallback change where a plan comes from, never whether it is correct",
    );
    table
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let dir = temp_dir();
    let tables = vec![partitioning(ctx, &dir), failover(ctx, &dir)];
    std::fs::remove_dir_all(&dir).ok();
    tables
}
