//! E12 — Response time under load (extension): the bottleneck-optimal
//! plan also dominates per-tuple latency when the pipeline is fed below
//! saturation, because its slowest stage has the most headroom.

use crate::runner::{Experiment, ExperimentContext};
use crate::table::{cell_f64, Table};
use dsq_baselines::uniform_reference_plan;
use dsq_core::{bottleneck_cost, optimize};
use dsq_simulator::{simulate, ArrivalProcess, SimConfig};
use dsq_workloads::credit_pipeline;

/// Registry entry.
pub fn experiment() -> Experiment {
    Experiment {
        id: "e12",
        title: "Tuple latency under load (extension)",
        claim: "\"the optimality is defined in terms of query response time\" (abstract) — checked at sub-saturation loads, not just at the throughput limit",
        run,
    }
}

fn run(ctx: &ExperimentContext) -> Vec<Table> {
    let tuples: u64 = ctx.size(20_000, 4_000);
    let inst = credit_pipeline();
    let optimal = optimize(&inst).into_plan();
    let (oblivious, _) = uniform_reference_plan(&inst).expect("within DP limit");

    // Both plans are fed at the same absolute rates: fractions of the
    // *optimal* plan's capacity. The oblivious plan's own capacity is
    // lower, so the same arrival rate loads it harder — and past its own
    // saturation point its latency diverges with run length.
    let optimal_capacity_interval = bottleneck_cost(&inst, &optimal);
    let oblivious_cost = bottleneck_cost(&inst, &oblivious);

    let mut table = Table::new(
        format!(
            "E12: credit-screening tuple latency at equal arrival rates ({tuples} tuples, blocks of 1, exponential service times)"
        ),
        ["plan", "arrival rate (× optimal capacity)", "own utilization", "mean", "p50", "p95", "p99"],
    );
    for (name, plan, cost) in [
        ("optimal", &optimal, optimal_capacity_interval),
        ("network-oblivious", &oblivious, oblivious_cost),
    ] {
        for load in [0.5, 0.7, 0.9] {
            let interval = optimal_capacity_interval / load;
            let utilization = cost / interval;
            let report = simulate(
                &inst,
                plan,
                &SimConfig {
                    tuples,
                    block_size: 1,
                    arrivals: ArrivalProcess::Paced { interval },
                    service_time: dsq_simulator::ServiceTimeModel::Exponential,
                    track_latency: true,
                    seed: 17,
                    ..SimConfig::default()
                },
            );
            let latency = report.latency.expect("latency tracking enabled");
            table.push_row([
                name.to_string(),
                cell_f64(load, 2),
                format!(
                    "{}{}",
                    cell_f64(utilization, 2),
                    if utilization >= 1.0 { " (overloaded)" } else { "" }
                ),
                cell_f64(latency.mean, 3),
                cell_f64(latency.p50, 3),
                cell_f64(latency.p95, 3),
                cell_f64(latency.p99, 3),
            ]);
        }
    }
    table.push_note(
        "equal absolute arrival rates: what the optimal plan absorbs with bounded queues pushes the network-oblivious plan past its own (lower) capacity, where sojourn grows with run length rather than settling",
    );
    table.push_note(
        "two companion observations from the engine tests: deterministic pipelines below saturation have load-independent latency (D/D/1 never queues), and block batching makes latency *fall* with load (blocks fill faster) — variance, not load alone, creates queueing delay",
    );
    vec![table]
}
