//! Threaded execution of decentralized pipelined plans — the "real
//! experiments" substrate (DESIGN.md, system inventory #10).
//!
//! Where `dsq-simulator` computes in virtual time, this crate actually
//! *runs* the pipeline: one OS thread per service, bounded crossbeam
//! channels as the network links, calibrated busy-work standing in for
//! service computation, and sender-side delays standing in for block
//! transmission (the paper's single-threaded process-and-send model).
//! Wall-clock bottleneck behaviour — backpressure, pipeline fill,
//! saturation of the slowest stage — emerges from real thread scheduling
//! rather than from the model being validated, which is what makes it a
//! meaningful second check on Eq. 1 (experiment E8).
//!
//! Timing assertions on shared CI hardware are inherently noisy, so the
//! crate's own tests check exact *semantics* (tuple accounting, ordering,
//! termination) and only coarse timing monotonicity; the fine-grained
//! agreement numbers are produced by the benchmark harness.
//!
//! # Examples
//!
//! ```
//! use dsq_core::{optimize, CommMatrix, QueryInstance, Service};
//! use dsq_runtime::{run_pipeline, RuntimeConfig};
//!
//! let inst = QueryInstance::from_parts(
//!     vec![Service::new(20.0, 0.5), Service::new(40.0, 1.0)],
//!     CommMatrix::uniform(2, 5.0),
//! )?;
//! let plan = optimize(&inst).into_plan();
//! // Costs are in microseconds here (time_scale = 1µs per cost unit).
//! let cfg = RuntimeConfig { tuples: 200, time_scale_us: 1.0, ..RuntimeConfig::default() };
//! let report = run_pipeline(&inst, &plan, &cfg);
//! assert_eq!(report.tuples_in, 200);
//! # Ok::<(), dsq_core::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use crossbeam::channel::{bounded, Receiver, Sender};
use dsq_core::{Plan, QueryInstance};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Configuration of a threaded pipeline run. Passive struct; fields are
/// public.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Number of input tuples.
    pub tuples: u64,
    /// Tuples per transmitted block.
    pub block_size: usize,
    /// Microseconds of real time per unit of model cost. A service with
    /// `c = 3.0` spins for `3 × time_scale_us` µs per tuple.
    pub time_scale_us: f64,
    /// Capacity of each inter-service channel, in blocks. Small values
    /// exercise backpressure; the paper's model assumes enough buffering
    /// that the bottleneck governs throughput.
    pub channel_blocks: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { tuples: 1_000, block_size: 32, time_scale_us: 1.0, channel_blocks: 8 }
    }
}

/// Per-stage telemetry of a threaded run.
#[derive(Debug, Clone, PartialEq)]
pub struct StageWallStats {
    /// Plan position.
    pub position: usize,
    /// Service index at this position.
    pub service: usize,
    /// Tuples consumed.
    pub tuples_in: u64,
    /// Tuples emitted.
    pub tuples_out: u64,
    /// Wall-clock time the stage thread spent processing + sending.
    pub busy: Duration,
}

/// Result of a threaded pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Input tuples fed to the pipeline.
    pub tuples_in: u64,
    /// Tuples that reached the sink.
    pub tuples_delivered: u64,
    /// Wall-clock end-to-end time.
    pub makespan: Duration,
    /// Input tuples per wall-clock second.
    pub throughput: f64,
    /// Per-stage telemetry in plan order.
    pub stages: Vec<StageWallStats>,
}

impl RuntimeReport {
    /// The position whose thread was busiest — the observed bottleneck.
    pub fn bottleneck_position(&self) -> usize {
        let mut best = 0;
        for (i, s) in self.stages.iter().enumerate() {
            if s.busy > self.stages[best].busy {
                best = i;
            }
        }
        best
    }
}

/// A block of tuples in flight. Tuples carry an id so tests can check
/// ordering and accounting; real payloads would ride alongside.
type Block = Vec<u64>;

enum Message {
    Data(Block),
    Eos,
}

/// Runs `plan` on real threads and reports wall-clock telemetry.
///
/// # Panics
///
/// Panics if the plan does not match the instance, or if
/// `tuples == 0`, `block_size == 0`, or `channel_blocks == 0`.
pub fn run_pipeline(
    instance: &QueryInstance,
    plan: &Plan,
    config: &RuntimeConfig,
) -> RuntimeReport {
    assert_eq!(plan.len(), instance.len(), "plan must cover the instance");
    assert!(config.tuples > 0, "run at least one tuple");
    assert!(config.block_size > 0, "block size must be positive");
    assert!(config.channel_blocks > 0, "channels need capacity");

    let order = plan.indices();
    let n = order.len();
    let stats: Mutex<Vec<Option<StageWallStats>>> = Mutex::new(vec![None; n]);
    let delivered = Mutex::new(Vec::<u64>::new());

    let started = Instant::now();
    std::thread::scope(|scope| {
        // Channel chain: source → stage 0 → … → stage n-1 → sink.
        let mut senders: Vec<Sender<Message>> = Vec::with_capacity(n + 1);
        let mut receivers: Vec<Receiver<Message>> = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            let (tx, rx) = bounded::<Message>(config.channel_blocks);
            senders.push(tx);
            receivers.push(rx);
        }

        // Stage threads.
        let mut rx_iter = receivers.into_iter();
        let first_rx = rx_iter.next().expect("n+1 channels");
        let mut upstream = first_rx;
        for (position, &service) in order.iter().enumerate() {
            let rx = upstream;
            upstream = rx_iter.next().expect("n+1 channels");
            let tx = senders[position + 1].clone();
            let stats = &stats;
            let cfg = config.clone();
            let cost = instance.cost(service);
            let sigma = instance.selectivity(service);
            let transfer = if position + 1 < n {
                instance.transfer(service, order[position + 1])
            } else {
                instance.sink_cost(service)
            };
            scope.spawn(move || {
                let s = stage_loop(position, service, cost, sigma, transfer, rx, tx, &cfg);
                stats.lock()[position] = Some(s);
            });
        }

        // Sink thread.
        let sink_rx = upstream;
        let delivered = &delivered;
        scope.spawn(move || {
            while let Ok(msg) = sink_rx.recv() {
                match msg {
                    Message::Data(block) => delivered.lock().extend(block),
                    Message::Eos => break,
                }
            }
        });

        // Source: feed all tuples, then EOS.
        let source_tx = senders[0].clone();
        drop(senders);
        let mut block = Vec::with_capacity(config.block_size);
        for id in 0..config.tuples {
            block.push(id);
            if block.len() == config.block_size {
                source_tx
                    .send(Message::Data(std::mem::take(&mut block)))
                    .expect("stage 0 outlives the source");
            }
        }
        if !block.is_empty() {
            source_tx.send(Message::Data(block)).expect("stage 0 outlives the source");
        }
        source_tx.send(Message::Eos).expect("stage 0 outlives the source");
    });
    let makespan = started.elapsed();

    let delivered = delivered.into_inner();
    let stages: Vec<StageWallStats> =
        stats.into_inner().into_iter().map(|s| s.expect("every stage thread reports")).collect();
    RuntimeReport {
        tuples_in: config.tuples,
        tuples_delivered: delivered.len() as u64,
        makespan,
        throughput: config.tuples as f64 / makespan.as_secs_f64().max(1e-12),
        stages,
    }
}

/// Body of one service thread: receive blocks, busy-work per tuple,
/// filter/expand with a deterministic accumulator, batch outputs, and pay
/// the transfer delay before each send (sender-occupied transmission).
#[allow(clippy::too_many_arguments)]
fn stage_loop(
    position: usize,
    service: usize,
    cost: f64,
    sigma: f64,
    transfer: f64,
    rx: Receiver<Message>,
    tx: Sender<Message>,
    config: &RuntimeConfig,
) -> StageWallStats {
    let mut tuples_in = 0u64;
    let mut tuples_out = 0u64;
    let mut busy = Duration::ZERO;
    let mut acc = 0.0f64;
    let mut out: Block = Vec::with_capacity(config.block_size);

    let spin = |units: f64| -> Duration {
        let target = Duration::from_secs_f64((units * config.time_scale_us * 1e-6).max(0.0));
        let start = Instant::now();
        while start.elapsed() < target {
            std::hint::spin_loop();
        }
        start.elapsed()
    };

    while let Ok(msg) = rx.recv() {
        let block = match msg {
            Message::Data(block) => block,
            Message::Eos => break,
        };
        for id in block {
            tuples_in += 1;
            busy += spin(cost);
            acc += sigma;
            while acc >= 1.0 {
                acc -= 1.0;
                tuples_out += 1;
                out.push(id);
                if out.len() == config.block_size {
                    busy += spin(out.len() as f64 * transfer);
                    tx.send(Message::Data(std::mem::take(&mut out)))
                        .expect("downstream outlives its upstream");
                    out.reserve(config.block_size);
                }
            }
        }
    }
    if !out.is_empty() {
        busy += spin(out.len() as f64 * transfer);
        tx.send(Message::Data(out)).expect("downstream outlives its upstream");
    }
    tx.send(Message::Eos).expect("downstream outlives its upstream");

    StageWallStats { position, service, tuples_in, tuples_out, busy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_core::{bottleneck_cost, CommMatrix, Service};

    fn pipeline(sigmas: &[f64], costs_us: &[f64], t_us: f64) -> QueryInstance {
        QueryInstance::from_parts(
            sigmas.iter().zip(costs_us).map(|(&s, &c)| Service::new(c, s)).collect(),
            CommMatrix::uniform(sigmas.len(), t_us),
        )
        .unwrap()
    }

    #[test]
    fn tuple_accounting_is_exact() {
        let inst = pipeline(&[0.5, 0.25, 1.0], &[1.0, 1.0, 1.0], 0.1);
        let plan = Plan::new(vec![0, 1, 2]).unwrap();
        let cfg = RuntimeConfig { tuples: 400, ..RuntimeConfig::default() };
        let report = run_pipeline(&inst, &plan, &cfg);
        assert_eq!(report.tuples_in, 400);
        assert_eq!(report.stages[0].tuples_in, 400);
        assert_eq!(report.stages[0].tuples_out, 200);
        assert_eq!(report.stages[1].tuples_in, 200);
        assert_eq!(report.stages[1].tuples_out, 50);
        assert_eq!(report.stages[2].tuples_out, 50);
        assert_eq!(report.tuples_delivered, 50);
    }

    #[test]
    fn proliferative_stage_expands() {
        let inst = pipeline(&[2.0, 1.0], &[0.5, 0.5], 0.0);
        let plan = Plan::new(vec![0, 1]).unwrap();
        let report =
            run_pipeline(&inst, &plan, &RuntimeConfig { tuples: 100, ..RuntimeConfig::default() });
        assert_eq!(report.stages[0].tuples_out, 200);
        assert_eq!(report.tuples_delivered, 200);
    }

    #[test]
    fn stage_order_follows_the_plan() {
        let inst = pipeline(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0], 0.0);
        let plan = Plan::new(vec![2, 0, 1]).unwrap();
        let report =
            run_pipeline(&inst, &plan, &RuntimeConfig { tuples: 10, ..RuntimeConfig::default() });
        let services: Vec<usize> = report.stages.iter().map(|s| s.service).collect();
        assert_eq!(services, vec![2, 0, 1]);
        let positions: Vec<usize> = report.stages.iter().map(|s| s.position).collect();
        assert_eq!(positions, vec![0, 1, 2]);
    }

    #[test]
    fn busiest_stage_is_the_predicted_bottleneck() {
        // One stage is 20× more expensive: scheduling noise cannot hide it.
        let inst = pipeline(&[1.0, 1.0, 1.0], &[5.0, 100.0, 5.0], 1.0);
        let plan = Plan::new(vec![0, 1, 2]).unwrap();
        let report = run_pipeline(
            &inst,
            &plan,
            &RuntimeConfig { tuples: 300, time_scale_us: 1.0, ..RuntimeConfig::default() },
        );
        assert_eq!(report.bottleneck_position(), 1);
        assert!(report.makespan > Duration::ZERO);
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn faster_plan_wins_wall_clock() {
        // Filter-first vs expensive-first with a strong filter: predicted
        // costs differ ~4×, far beyond scheduler noise.
        let inst = pipeline(&[0.1, 1.0], &[20.0, 200.0], 2.0);
        let fast = Plan::new(vec![0, 1]).unwrap();
        let slow = Plan::new(vec![1, 0]).unwrap();
        assert!(bottleneck_cost(&inst, &slow) / bottleneck_cost(&inst, &fast) > 2.0);
        let cfg = RuntimeConfig { tuples: 400, time_scale_us: 1.0, ..RuntimeConfig::default() };
        let fast_run = run_pipeline(&inst, &fast, &cfg);
        let slow_run = run_pipeline(&inst, &slow, &cfg);
        assert!(
            slow_run.makespan > fast_run.makespan,
            "slow {:?} should exceed fast {:?}",
            slow_run.makespan,
            fast_run.makespan
        );
    }

    #[test]
    fn partial_final_block_is_flushed() {
        let inst = pipeline(&[1.0], &[0.1], 0.0);
        let plan = Plan::new(vec![0]).unwrap();
        let cfg = RuntimeConfig { tuples: 33, block_size: 32, ..RuntimeConfig::default() };
        let report = run_pipeline(&inst, &plan, &cfg);
        assert_eq!(report.tuples_delivered, 33);
    }

    #[test]
    fn tight_channels_apply_backpressure_without_losing_tuples() {
        // Capacity of one block forces constant blocking on sends; the
        // accounting must still be exact and the run must terminate.
        let inst = pipeline(&[0.5, 2.0, 1.0], &[1.0, 1.0, 1.0], 0.5);
        let plan = Plan::new(vec![0, 1, 2]).unwrap();
        let cfg = RuntimeConfig {
            tuples: 300,
            block_size: 4,
            channel_blocks: 1,
            ..RuntimeConfig::default()
        };
        let report = run_pipeline(&inst, &plan, &cfg);
        assert_eq!(report.stages[0].tuples_out, 150);
        assert_eq!(report.stages[1].tuples_out, 300);
        assert_eq!(report.tuples_delivered, 300);
    }

    #[test]
    fn single_stage_pipeline_works() {
        let inst = pipeline(&[0.75], &[2.0], 0.0);
        let plan = Plan::new(vec![0]).unwrap();
        let report =
            run_pipeline(&inst, &plan, &RuntimeConfig { tuples: 100, ..RuntimeConfig::default() });
        assert_eq!(report.tuples_delivered, 75);
        assert_eq!(report.stages.len(), 1);
        assert!(report.stages[0].busy > Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one tuple")]
    fn zero_tuples_rejected() {
        let inst = pipeline(&[1.0], &[1.0], 0.0);
        run_pipeline(
            &inst,
            &Plan::new(vec![0]).unwrap(),
            &RuntimeConfig { tuples: 0, ..RuntimeConfig::default() },
        );
    }
}
