//! Property-based round-trip tests of the text instance format across
//! generated workloads, including names, sinks and precedence edges.

use proptest::prelude::*;
use service_ordering::core::{format_instance, parse_instance, QueryInstance, Service};
use service_ordering::workloads::{generate, random_dag, Family};

#[test]
fn all_families_round_trip() {
    for family in Family::ALL {
        for seed in 0..3 {
            let inst = generate(family, 7, seed);
            let text = format_instance(&inst);
            let parsed = parse_instance(&text)
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", family.name()));
            assert_eq!(parsed, inst, "{} seed {seed}", family.name());
        }
    }
}

#[test]
fn precedence_and_names_survive() {
    let base = generate(Family::Clustered, 6, 9);
    let inst = QueryInstance::builder()
        .name("with everything")
        .services(base.services().iter().enumerate().map(|(i, s)| {
            Service::new(s.cost(), s.selectivity()).with_name(format!("svc number {i}"))
        }))
        .comm(base.comm().clone())
        .sink(vec![0.5; 6])
        .precedence(random_dag(6, 0.4, 3))
        .build()
        .expect("valid");
    let parsed = parse_instance(&format_instance(&inst)).expect("round trip");
    assert_eq!(parsed, inst);
    assert_eq!(parsed.service(2.into()).name(), Some("svc number 2"));
    assert_eq!(
        parsed.precedence().map(|d| d.edge_count()),
        inst.precedence().map(|d| d.edge_count())
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Arbitrary finite non-negative parameters survive the decimal
    /// round-trip exactly (Rust's float formatting is shortest-exact).
    #[test]
    fn arbitrary_instances_round_trip(
        n in 1usize..6,
        seed in 0u64..1000,
        scale in 0.001f64..1000.0,
    ) {
        let services: Vec<Service> = (0..n)
            .map(|i| Service::new(scale * (i as f64 + 0.1), (i as f64 * 0.37 + 0.01) % 2.0))
            .collect();
        let comm = service_ordering::core::CommMatrix::from_fn(n, |i, j| {
            if i == j { 0.0 } else { scale * ((seed as usize + i * 3 + j) % 17) as f64 / 7.0 }
        });
        let inst = QueryInstance::from_parts(services, comm).expect("valid");
        let parsed = parse_instance(&format_instance(&inst)).expect("parses");
        prop_assert_eq!(parsed, inst);
    }

    /// The optimizer produces the same result on a round-tripped instance
    /// (no information relevant to optimization is lost).
    #[test]
    fn optimization_is_format_invariant(seed in 0u64..200) {
        let inst = generate(Family::UniformRandom, 6, seed);
        let parsed = parse_instance(&format_instance(&inst)).expect("parses");
        let a = service_ordering::core::optimize(&inst);
        let b = service_ordering::core::optimize(&parsed);
        prop_assert!((a.cost() - b.cost()).abs() <= 1e-12 * a.cost().max(1.0));
    }
}
