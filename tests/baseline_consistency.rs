//! Cross-crate consistency of the baseline algorithms: heuristics are
//! sound (never below the optimum), the uniform-communication algorithm
//! is exact in its special case, and the BTSP reduction closes the loop
//! between the paper's NP-hardness argument and the optimizer.

use service_ordering::baselines::{
    best_greedy, btsp_lower_bound, btsp_path_exact, btsp_query_instance, local_search,
    path_bottleneck, random_sampling, simulated_annealing, subset_dp, uniform_optimal,
    uniform_reference_plan, uniformized, AnnealingConfig, LocalSearchConfig,
};
use service_ordering::core::{bottleneck_cost, optimize};
use service_ordering::netsim::uniform_random;
use service_ordering::workloads::{generate, Family, Sweep};

#[test]
fn heuristics_bracket_the_optimum() {
    let points = Sweep::new()
        .families([Family::UniformRandom, Family::Clustered, Family::HubSpoke])
        .sizes([6, 8])
        .seeds(0..3)
        .build();
    for point in &points {
        let inst = &point.instance;
        let opt = optimize(inst).cost();
        let greedy = best_greedy(inst).cost();
        let ls = local_search(inst, &LocalSearchConfig::default()).cost();
        let sa = simulated_annealing(inst, &AnnealingConfig { steps: 5_000, ..Default::default() })
            .cost();
        let rnd = random_sampling(inst, 50, point.seed).cost();
        for (name, value) in [("greedy", greedy), ("ls", ls), ("sa", sa), ("random", rnd)] {
            assert!(
                value >= opt - 1e-9,
                "{name} beat the optimum on {} n={} seed={}: {value} < {opt}",
                point.family.name(),
                point.n,
                point.seed
            );
        }
        assert!(ls <= greedy + 1e-9, "local search must not be worse than its start");
    }
}

#[test]
fn uniform_algorithm_is_exact_in_its_special_case() {
    for seed in 0..5 {
        let base = generate(Family::Correlated, 7, seed);
        let t = base.comm().mean_off_diagonal();
        let relaxed = uniformized(&base, t);
        let fast = uniform_optimal(&base, t).expect("selective services");
        let exact = subset_dp(&relaxed).expect("within limit");
        assert!(
            (fast.cost() - exact.cost()).abs() <= 1e-9 * exact.cost().max(1.0),
            "seed {seed}: greedy {} vs dp {}",
            fast.cost(),
            exact.cost()
        );
        // And the B&B agrees too (Eq. 1 on the uniformized instance).
        let bnb = optimize(&relaxed);
        assert!((bnb.cost() - exact.cost()).abs() <= 1e-9 * exact.cost().max(1.0));
    }
}

#[test]
fn network_oblivious_plans_never_beat_the_decentralized_optimum() {
    for family in [Family::Euclidean, Family::Clustered] {
        for seed in 0..4 {
            let inst = generate(family, 9, seed);
            let opt = optimize(&inst).cost();
            let (plan, _) = uniform_reference_plan(&inst).expect("within limit");
            let oblivious = bottleneck_cost(&inst, &plan);
            assert!(
                oblivious >= opt - 1e-9,
                "{} seed {seed}: oblivious {oblivious} vs optimum {opt}",
                family.name()
            );
        }
    }
}

#[test]
fn btsp_reduction_closes_the_loop() {
    for seed in 0..5 {
        let comm = uniform_random(7, 1.0, 50.0, false, seed).into_comm();
        let inst = btsp_query_instance(&comm);
        let bnb = optimize(&inst);
        let exact = btsp_path_exact(&comm).expect("within limit");
        assert!(
            (bnb.cost() - exact.bottleneck()).abs() <= 1e-9 * exact.bottleneck().max(1.0),
            "seed {seed}: bnb {} vs btsp {}",
            bnb.cost(),
            exact.bottleneck()
        );
        // The B&B's plan, read as a path, achieves the same bottleneck.
        let path = bnb.plan().indices();
        assert!(
            (path_bottleneck(&comm, &path) - exact.bottleneck()).abs() <= 1e-9,
            "seed {seed}: path bottleneck mismatch"
        );
        assert!(btsp_lower_bound(&comm) <= exact.bottleneck() + 1e-9);
    }
}

#[test]
fn proliferative_fallback_path_works_end_to_end() {
    // uniform_reference_plan must transparently fall back to the DP when
    // services are proliferative.
    let inst = generate(Family::ProliferativeMix, 8, 1);
    assert!(inst.has_proliferative(), "family should generate σ>1");
    let (plan, model_cost) = uniform_reference_plan(&inst).expect("fallback within limit");
    assert_eq!(plan.len(), 8);
    assert!(model_cost.is_finite());
    assert!(bottleneck_cost(&inst, &plan) >= optimize(&inst).cost() - 1e-9);
}
