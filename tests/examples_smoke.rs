//! Smoke tests: every checked-in example must build, run to completion,
//! and print the output its narrative promises. Examples are documentation
//! that tends to rot silently; this file makes rot a test failure.
//!
//! Each test shells out to `cargo run --release --example …` — release
//! because the heuristics example orders 60 services, and because the
//! tier-1 pipeline (`cargo build --release && cargo test`) has already
//! produced the artifacts, making these runs cheap.

use std::process::Command;

fn run_example(name: &str) -> String {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["run", "--release", "--quiet", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn quickstart_runs() {
    let out = run_example("quickstart");
    assert!(!out.trim().is_empty(), "quickstart should print its result:\n{out}");
}

#[test]
fn credit_card_screening_runs() {
    let out = run_example("credit_card_screening");
    assert!(out.contains("optimal"), "expected an optimal plan report:\n{out}");
}

#[test]
fn geo_distributed_analytics_runs() {
    let out = run_example("geo_distributed_analytics");
    assert!(out.contains("spread"), "expected the heterogeneity sweep table:\n{out}");
}

#[test]
fn precedence_workflow_runs() {
    let out = run_example("precedence_workflow");
    assert!(!out.trim().is_empty(), "precedence workflow should print plans:\n{out}");
}

#[test]
fn large_scale_heuristics_runs() {
    let out = run_example("large_scale_heuristics");
    assert!(out.contains("best method here"), "expected the method comparison:\n{out}");
}
