//! Cross-crate validation of the execution substrates against the cost
//! model: the discrete-event simulator quantitatively, the threaded
//! runtime semantically (timing is asserted only coarsely — CI hosts may
//! have a single core, where pipelined overlap is impossible).

use service_ordering::core::{bottleneck_cost, cost_terms, optimize, sum_cost};
use service_ordering::runtime::{run_pipeline, RuntimeConfig};
use service_ordering::simulator::{simulate, SelectivityModel, ServiceTimeModel, SimConfig};
use service_ordering::workloads::{credit_pipeline, generate, Family};

#[test]
fn simulator_validates_eq1_on_generated_instances() {
    for family in [Family::Clustered, Family::Euclidean, Family::UniformRandom] {
        for seed in 0..2 {
            let inst = generate(family, 6, seed);
            let plan = optimize(&inst).into_plan();
            let predicted = bottleneck_cost(&inst, &plan);
            let report = simulate(
                &inst,
                &plan,
                &SimConfig { tuples: 15_000, block_size: 16, ..SimConfig::default() },
            );
            let ratio = report.throughput * predicted;
            assert!(
                (0.85..=1.05).contains(&ratio),
                "{} seed {seed}: throughput·cost = {ratio}",
                family.name()
            );
        }
    }
}

#[test]
fn simulator_stage_busy_times_track_cost_terms() {
    let inst = credit_pipeline();
    let plan = optimize(&inst).into_plan();
    let report = simulate(&inst, &plan, &SimConfig { tuples: 20_000, ..SimConfig::default() });
    for (term, stage) in cost_terms(&inst, &plan).iter().zip(&report.stages) {
        let measured = stage.unit_busy_time(report.tuples_in);
        assert!(
            (measured - term.term).abs() <= 0.08 * term.term.max(0.01),
            "position {}: measured {measured} vs predicted {}",
            term.position,
            term.term
        );
    }
}

#[test]
fn simulator_stochastic_modes_stay_near_the_model() {
    let inst = generate(Family::UniformRandom, 5, 11);
    let plan = optimize(&inst).into_plan();
    let predicted = bottleneck_cost(&inst, &plan);
    let report = simulate(
        &inst,
        &plan,
        &SimConfig {
            tuples: 30_000,
            service_time: ServiceTimeModel::Exponential,
            selectivity: SelectivityModel::Stochastic,
            seed: 3,
            ..SimConfig::default()
        },
    );
    // Randomized service/selectivity adds queueing noise; stay within 15%.
    let ratio = report.throughput * predicted;
    assert!((0.8..=1.1).contains(&ratio), "stochastic ratio {ratio}");
}

#[test]
fn plan_ranking_is_preserved_by_the_simulator() {
    // The simulator must agree with the model about which plan is better
    // when the predicted gap is large.
    let inst = credit_pipeline();
    let best = optimize(&inst).into_plan();
    let worst = service_ordering::core::Plan::new(vec![1, 4, 3, 0, 2, 5]).expect("permutation");
    assert!(bottleneck_cost(&inst, &worst) / bottleneck_cost(&inst, &best) > 2.0);
    let cfg = SimConfig { tuples: 5_000, ..SimConfig::default() };
    let best_run = simulate(&inst, &best, &cfg);
    let worst_run = simulate(&inst, &worst, &cfg);
    assert!(best_run.makespan < worst_run.makespan);
    assert!(best_run.throughput > 2.0 * worst_run.throughput);
}

#[test]
fn threaded_runtime_matches_simulator_semantics() {
    // Same instance, same plan: the DES (Expected mode) and the threaded
    // runtime must agree exactly on tuple accounting.
    let inst = credit_pipeline();
    let plan = optimize(&inst).into_plan();
    let sim = simulate(&inst, &plan, &SimConfig { tuples: 1_000, ..SimConfig::default() });
    let wall = run_pipeline(
        &inst,
        &plan,
        &RuntimeConfig { tuples: 1_000, time_scale_us: 0.5, ..RuntimeConfig::default() },
    );
    assert_eq!(sim.tuples_delivered, wall.tuples_delivered);
    for (s, w) in sim.stages.iter().zip(&wall.stages) {
        assert_eq!(s.service, w.service);
        assert_eq!(s.tuples_in, w.tuples_in);
        assert_eq!(s.tuples_out, w.tuples_out);
    }
}

#[test]
fn threaded_runtime_wall_clock_is_bounded_by_the_model() {
    // Coarse timing envelope valid on any host: the pipeline can never
    // beat the bottleneck limit, and on P cores it can never beat the
    // total-work/P limit either. Allow 20% measurement slack downward.
    let inst = credit_pipeline();
    let plan = optimize(&inst).into_plan();
    let tuples = 500u64;
    let scale = 100.0; // µs per cost unit
    let report = run_pipeline(
        &inst,
        &plan,
        &RuntimeConfig { tuples, time_scale_us: scale, ..RuntimeConfig::default() },
    );
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get()) as f64;
    let unit = bottleneck_cost(&inst, &plan).max(sum_cost(&inst, &plan) / cores);
    let floor = std::time::Duration::from_secs_f64(0.8 * tuples as f64 * unit * scale * 1e-6);
    assert!(
        report.makespan >= floor,
        "wall clock {:?} beat the physical floor {:?}",
        report.makespan,
        floor
    );
}
