//! Differential test battery: four independent optimizers — the paper's
//! branch-and-bound (`optimize`), its multi-threaded variant
//! (`optimize_parallel`), brute-force `exhaustive` search, and the
//! Held-Karp style `subset_dp` — must agree on the optimal bottleneck
//! cost for every instance, across **all five** `dsq-netsim` topology
//! families and **both** selectivity regimes (σ ≤ 1 and the σ > 1
//! proliferative generalization). Until this suite, baseline agreement
//! was only spot-checked per family.
//!
//! Case budget: `PROPTEST_CASES` caps the property sweep (CI pins it);
//! the deterministic corpus below guarantees every (family × regime)
//! cell is exercised at least three times regardless of the cap.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use service_ordering::baselines::{exhaustive, subset_dp};
use service_ordering::core::{
    bottleneck_cost, optimize, optimize_parallel, BnbConfig, CommMatrix, QueryInstance, Service,
};
use service_ordering::netsim;
use std::num::NonZeroUsize;

/// The five `dsq-netsim` topology families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Topology {
    Euclidean,
    Clustered,
    HubSpoke,
    LastMile,
    UniformRandom,
}

const TOPOLOGIES: [Topology; 5] = [
    Topology::Euclidean,
    Topology::Clustered,
    Topology::HubSpoke,
    Topology::LastMile,
    Topology::UniformRandom,
];

fn comm_for(topology: Topology, n: usize, seed: u64) -> CommMatrix {
    match topology {
        Topology::Euclidean => netsim::euclidean(n, 100.0, 0.1, 0.012, seed).into_comm(),
        Topology::Clustered => netsim::clustered(n, 3, 0.1, 1.2, 0.2, seed).into_comm(),
        Topology::HubSpoke => netsim::hub_spoke(n, 2, 0.2, 0.8, seed).into_comm(),
        Topology::LastMile => netsim::last_mile(n, (0.05, 0.6), (0.02, 0.3), seed).into_comm(),
        Topology::UniformRandom => netsim::uniform_random(n, 0.05, 1.5, false, seed).into_comm(),
    }
}

/// `proliferative == false` keeps every σ in (0, 1] (the classical
/// selective regime); `true` mixes in σ up to 2.5 (the paper's σ > 1
/// generalization).
fn instance(topology: Topology, proliferative: bool, n: usize, seed: u64) -> QueryInstance {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD5A5);
    let services: Vec<Service> = (0..n)
        .map(|_| {
            let sigma = if proliferative && rng.gen_bool(0.35) {
                rng.gen_range(1.0..2.5)
            } else {
                rng.gen_range(0.05..1.0)
            };
            Service::new(rng.gen_range(0.05..2.0), sigma)
        })
        .collect();
    QueryInstance::builder()
        .name(format!("differential-{topology:?}-{proliferative}-{n}-{seed}"))
        .services(services)
        .comm(comm_for(topology, n, seed))
        .build()
        .expect("generated instances are valid")
}

/// The invariant under test: all four optimizers report the same optimal
/// cost, and each reported plan actually achieves its reported cost.
fn assert_all_optimizers_agree(inst: &QueryInstance, context: &str) {
    let reference = exhaustive(inst).expect("n within exhaustive limit");
    let dp = subset_dp(inst).expect("n within DP limit");
    let bnb = optimize(inst);
    let parallel = optimize_parallel(inst, &BnbConfig::paper(), NonZeroUsize::new(2).unwrap());

    let tol = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert!(
        tol(dp.cost(), reference.cost()),
        "{context}: subset_dp {} vs exhaustive {}",
        dp.cost(),
        reference.cost()
    );
    assert!(
        tol(bnb.cost(), reference.cost()),
        "{context}: optimize {} vs exhaustive {}",
        bnb.cost(),
        reference.cost()
    );
    assert!(
        tol(parallel.cost(), reference.cost()),
        "{context}: optimize_parallel {} vs exhaustive {}",
        parallel.cost(),
        reference.cost()
    );
    assert!(bnb.is_proven_optimal() && parallel.is_proven_optimal());
    for (plan, cost) in
        [(bnb.plan(), bnb.cost()), (parallel.plan(), parallel.cost()), (dp.plan(), dp.cost())]
    {
        assert!(
            tol(bottleneck_cost(inst, plan), cost),
            "{context}: a reported plan does not achieve its reported cost"
        );
    }
}

/// Deterministic corpus: every family × regime cell, three sizes each —
/// runs in full even when PROPTEST_CASES is pinned low.
#[test]
fn corpus_all_families_and_both_regimes_agree() {
    for topology in TOPOLOGIES {
        for proliferative in [false, true] {
            for (n, seed) in [(4usize, 11u64), (6, 12), (8, 13)] {
                let inst = instance(topology, proliferative, n, seed);
                assert_all_optimizers_agree(
                    &inst,
                    &format!("{topology:?} proliferative={proliferative} n={n} seed={seed}"),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Randomized sweep over the same grid: arbitrary seeds, n ≤ 8
    /// (bounded by the exhaustive oracle's n! blowup).
    #[test]
    fn random_instances_agree_across_optimizers(
        topology_index in 0usize..TOPOLOGIES.len(),
        regime in 0u32..2,
        n in 2usize..=8,
        seed in 0u64..u64::MAX,
    ) {
        let topology = TOPOLOGIES[topology_index];
        let proliferative = regime == 1;
        let inst = instance(topology, proliferative, n, seed);
        assert_all_optimizers_agree(
            &inst,
            &format!("{topology:?} proliferative={proliferative} n={n} seed={seed}"),
        );
    }
}
