//! Cross-crate optimality tests: the branch-and-bound agrees with every
//! exact method on every workload family, under every ablation
//! configuration.

use service_ordering::baselines::{exhaustive, subset_dp};
use service_ordering::core::{optimize_with, BnbConfig};
use service_ordering::workloads::{random_dag, Family, Sweep};

fn assert_close(a: f64, b: f64, what: &str) {
    assert!((a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0), "{what}: {a} vs {b}");
}

#[test]
fn bnb_matches_exact_methods_on_all_families() {
    let configs = [
        BnbConfig::paper(),
        BnbConfig::incumbent_only(),
        BnbConfig::without_epsilon_bar(),
        BnbConfig::without_backjump(),
        BnbConfig::extended(),
    ];
    let points = Sweep::new().families(Family::ALL).sizes([3, 5, 7]).seeds(0..4).build();
    for point in points {
        let dp = subset_dp(&point.instance).expect("within limit");
        let brute = exhaustive(&point.instance).expect("within limit");
        assert_close(dp.cost(), brute.cost(), "dp vs exhaustive");
        for cfg in &configs {
            let result = optimize_with(&point.instance, cfg);
            assert!(result.is_proven_optimal());
            assert_close(
                result.cost(),
                dp.cost(),
                &format!("{} n={} seed={} cfg={cfg:?}", point.family.name(), point.n, point.seed),
            );
        }
    }
}

#[test]
fn bnb_matches_dp_with_precedence_constraints() {
    for n in [5, 7, 9] {
        for seed in 0..4 {
            for density in [0.15, 0.5] {
                let base = service_ordering::workloads::generate(Family::UniformRandom, n, seed);
                let inst = service_ordering::core::QueryInstance::builder()
                    .name("prec-test")
                    .services(base.services().to_vec())
                    .comm(base.comm().clone())
                    .precedence(random_dag(n, density, seed * 31 + n as u64))
                    .build()
                    .expect("valid");
                let dp = subset_dp(&inst).expect("within limit");
                let bnb = optimize_with(&inst, &BnbConfig::paper());
                assert_close(bnb.cost(), dp.cost(), &format!("n={n} seed={seed} d={density}"));
                assert!(bnb.plan().satisfies(inst.precedence().expect("present")));
            }
        }
    }
}

#[test]
fn bnb_handles_larger_instances_against_dp() {
    // n = 13: far beyond exhaustive reach, still exact for the DP.
    for family in [Family::UniformRandom, Family::Clustered, Family::BtspHard] {
        for seed in 0..2 {
            let inst = service_ordering::workloads::generate(family, 13, seed);
            let dp = subset_dp(&inst).expect("within limit");
            let bnb = optimize_with(&inst, &BnbConfig::paper());
            assert_close(bnb.cost(), dp.cost(), &format!("{} seed {seed}", family.name()));
            assert!(
                bnb.stats().nodes_visited < 2_000_000,
                "search blew up: {} nodes",
                bnb.stats().nodes_visited
            );
        }
    }
}

#[test]
fn search_statistics_reflect_pruning_strength() {
    // The full configuration should never visit more nodes than the
    // incumbent-only ablation; aggregated over instances it should
    // visit strictly fewer on the hard family.
    let points = Sweep::new().families([Family::BtspHard]).sizes([9]).seeds(0..5).build();
    let mut full_total = 0u64;
    let mut weak_total = 0u64;
    for point in &points {
        let full = optimize_with(&point.instance, &BnbConfig::paper());
        let weak = optimize_with(&point.instance, &BnbConfig::incumbent_only());
        assert_close(full.cost(), weak.cost(), "ablations agree");
        assert!(full.stats().nodes_visited <= weak.stats().nodes_visited);
        full_total += full.stats().nodes_visited;
        weak_total += weak.stats().nodes_visited;
    }
    assert!(
        full_total < weak_total,
        "lemma pruning should help on BTSP-hard instances: {full_total} vs {weak_total}"
    );
}
