//! Determinism regression tests.
//!
//! Two guards:
//!
//! * `optimize_parallel` returns the **same plan and cost** for thread
//!   counts {1, 2, 4, 8} on a fixed instance set — the deterministic
//!   replay pass must hide worker scheduling entirely.
//! * Every `dsq-netsim` generator is **byte-identical** for a fixed
//!   seed: the FNV-1a hash of each generated matrix's exact `f64` bit
//!   patterns is pinned below. The workspace vendors its RNG
//!   (`vendor/rand`, xoshiro256++ behind `StdRng`), so any silent drift
//!   of that stream — an upgrade, a refactor, an accidental reseed —
//!   breaks these constants loudly instead of silently invalidating
//!   every checked-in experiment number.

use service_ordering::core::{bottleneck_cost, optimize_parallel, BnbConfig, CommMatrix};
use service_ordering::netsim;
use service_ordering::workloads::{generate, Family};
use std::num::NonZeroUsize;

#[test]
fn parallel_plans_and_costs_are_thread_count_invariant() {
    // BtspHard exercises deep searches with many equal-cost near-optima,
    // the regime where racing workers used to pick scheduling-dependent
    // plans; the other families cover the structured topologies.
    let corpus: Vec<_> = Family::ALL
        .iter()
        .flat_map(|&family| {
            let n = if family == Family::BtspHard { 10 } else { 9 };
            [(family, n, 1u64), (family, n, 2u64)]
        })
        .map(|(family, n, seed)| generate(family, n, seed))
        .collect();

    for inst in &corpus {
        let reference =
            optimize_parallel(inst, &BnbConfig::paper(), NonZeroUsize::new(1).expect("nz"));
        assert!(reference.is_proven_optimal());
        for threads in [2usize, 4, 8] {
            let result = optimize_parallel(
                inst,
                &BnbConfig::paper(),
                NonZeroUsize::new(threads).expect("nz"),
            );
            assert_eq!(
                result.plan(),
                reference.plan(),
                "{}: plan differs between 1 and {threads} threads",
                inst.name()
            );
            assert_eq!(
                result.cost().to_bits(),
                reference.cost().to_bits(),
                "{}: cost differs between 1 and {threads} threads",
                inst.name()
            );
            assert_eq!(bottleneck_cost(inst, result.plan()).to_bits(), result.cost().to_bits());
        }
    }
}

/// The workspace's shared FNV-1a over the exact bit patterns of a
/// matrix, row-major.
fn matrix_fingerprint(comm: &CommMatrix) -> u64 {
    let mut h = service_ordering::core::Fnv1a::new();
    let n = comm.len();
    for i in 0..n {
        for j in 0..n {
            h.write_f64_bits(comm.get(i, j));
        }
    }
    h.finish()
}

/// The pinned constants: regenerate by printing `matrix_fingerprint` for
/// each generator below — but only after deliberately deciding the RNG
/// stream may change (it invalidates checked-in experiment numbers).
#[test]
fn netsim_generators_are_byte_identical_for_fixed_seeds() {
    let cases: [(&str, CommMatrix, u64); 5] = [
        ("euclidean", netsim::euclidean(8, 100.0, 0.5, 0.02, 42).into_comm(), 0x59DC5E2B3F224F15),
        ("clustered", netsim::clustered(9, 3, 0.2, 2.0, 0.15, 42).into_comm(), 0x7B696A929C6226E5),
        ("hub-spoke", netsim::hub_spoke(10, 2, 0.3, 1.1, 42).into_comm(), 0x909D2D50D0DCD01D),
        (
            "last-mile",
            netsim::last_mile(8, (0.1, 0.9), (0.05, 0.4), 42).into_comm(),
            0xDC0837F5350B785B,
        ),
        (
            "uniform-random",
            netsim::uniform_random(9, 0.1, 2.0, false, 42).into_comm(),
            0x8E82B320CB9DE226,
        ),
    ];
    let drifted: Vec<String> = cases
        .iter()
        .filter_map(|(name, comm, expected)| {
            let actual = matrix_fingerprint(comm);
            (actual != *expected)
                .then(|| format!("{name}: fingerprint 0x{actual:016X}, pinned 0x{expected:016X}"))
        })
        .collect();
    assert!(
        drifted.is_empty(),
        "generated matrices drifted — the vendored RNG stream or a generator changed:\n{}",
        drifted.join("\n")
    );
}

/// The workload families sit on top of the same RNG; pin their textual
/// form end to end (format_instance covers services, matrix, and name).
#[test]
fn workload_families_are_reproducible_end_to_end() {
    for family in Family::ALL {
        let a = service_ordering::core::format_instance(&generate(family, 7, 1234));
        let b = service_ordering::core::format_instance(&generate(family, 7, 1234));
        assert_eq!(a, b, "{} is not reproducible", family.name());
    }
}
