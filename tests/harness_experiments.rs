//! The experiment harness runs end to end in quick mode and its headline
//! numbers point the right way. These tests are the repository's "the
//! evaluation still reproduces" guard.

use dsq_harness::{all_experiments, run_experiment, ExperimentContext};

fn quick_ctx() -> ExperimentContext {
    ExperimentContext { quick: true, out_dir: None }
}

fn run_by_id(id: &str) -> Vec<dsq_harness::Table> {
    let registry = all_experiments();
    let experiment = registry.iter().find(|e| e.id == id).expect("known id");
    run_experiment(experiment, &quick_ctx())
}

#[test]
fn registry_is_complete() {
    let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
    assert_eq!(
        ids,
        [
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
            "e14", "e15", "e16", "e17", "e18"
        ]
    );
}

#[test]
fn e1_reports_full_optimality() {
    let tables = run_by_id("e1");
    assert_eq!(tables.len(), 2);
    // Every row must report checks == matches.
    let csv = tables[0].to_csv();
    for line in csv.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields[2], fields[3], "mismatch in row: {line}");
    }
}

#[test]
fn e3_shows_pruning_gains() {
    let tables = run_by_id("e3");
    assert!(!tables.is_empty());
    for table in &tables {
        let csv = table.to_csv();
        let rows: Vec<Vec<String>> =
            csv.lines().skip(1).map(|l| l.split(',').map(str::to_string).collect()).collect();
        let nodes: Vec<f64> = rows.iter().map(|r| r[1].parse().expect("numeric")).collect();
        // Paper config (row 3) never visits more nodes than L1-only (row 0).
        assert!(nodes[3] <= nodes[0], "paper config should not exceed incumbent-only: {nodes:?}");
    }
}

#[test]
fn e6_gap_grows_with_heterogeneity() {
    let tables = run_by_id("e6");
    let csv = tables[0].to_csv();
    let gaps: Vec<f64> = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(2).expect("gap column").parse().expect("numeric"))
        .collect();
    assert!((gaps[0] - 1.0).abs() < 1e-9, "factor 0 must have gap 1, got {}", gaps[0]);
    assert!(gaps.last().expect("rows") > &gaps[0], "gap should grow with spread: {gaps:?}");
}

#[test]
fn e5_simulator_agrees_with_the_model() {
    let tables = run_by_id("e5");
    let csv = tables[0].to_csv();
    for line in csv.lines().skip(1) {
        let ratio: f64 = line.split(',').nth(4).expect("ratio column").parse().expect("numeric");
        assert!((0.85..=1.1).contains(&ratio), "simulated/predicted ratio out of band: {line}");
    }
}

#[test]
fn e9_reduction_always_matches() {
    let tables = run_by_id("e9");
    let csv = tables[0].to_csv();
    for line in csv.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields[1], fields[2], "B&B must match the BTSP solver: {line}");
    }
}

#[test]
fn e13_cache_serves_fast_and_within_tolerance() {
    // e13 itself asserts that every served plan's cost stays within the
    // validation tolerance of a fresh optimum; here we additionally check
    // the headline numbers point the right way.
    let tables = run_by_id("e13");
    let csv = tables[0].to_csv();
    let rows: Vec<Vec<String>> =
        csv.lines().skip(1).map(|l| l.split(',').map(str::to_string).collect()).collect();
    // Rows come in blocks of four per family: cold, then cached w{1,2,4}.
    assert_eq!(rows.len() % 4, 0);
    for block in rows.chunks(4) {
        let cold_rps: f64 = block[0][2].parse().expect("numeric req/s");
        assert!(cold_rps > 0.0);
        let hard_family = block[0][0].starts_with("btsp-hard");
        for cached in &block[1..] {
            let hit_rate: f64 = cached[4].parse().expect("numeric hit rate");
            assert!(hit_rate > 0.6, "drifting stream should mostly hit: {cached:?}");
            let max_dev: f64 = cached[8].parse().expect("numeric deviation");
            assert!(max_dev <= 0.05 + 1e-9, "served plans out of tolerance: {cached:?}");
            if hard_family {
                // Where optimization is expensive, the cache must win
                // clearly even at quick sizes (full mode shows ≥ 5×; the
                // margin here is loose because CI machines are noisy).
                let speedup: f64 =
                    cached[3].trim_end_matches('×').parse().expect("numeric speedup");
                assert!(speedup > 1.3, "cache must beat cold on the hard family: {cached:?}");
            }
        }
    }
}

#[test]
fn e14_daemon_soak_asserts_hold_and_report_the_right_shape() {
    // e14 bakes its own asserts in (tolerance of every socket-served
    // plan, warm-restart hit rate within 5 points, busy-not-stall under
    // a burst, boundary-walk hit-rate recovery); running it at quick
    // sizes is the regression guard. Check the table shapes on top.
    let tables = run_by_id("e14");
    assert_eq!(tables.len(), 3);
    // E14a: pre-restart and warm-restart rows.
    assert_eq!(tables[0].row_count(), 2);
    // E14c: the two-probe hit rate (row 1) beats single-probe (row 0).
    let csv = tables[2].to_csv();
    let hit_rates: Vec<f64> = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(5).expect("hit-rate column").parse().expect("numeric"))
        .collect();
    assert!(hit_rates[1] > hit_rates[0] + 0.5, "multi-probe recovery: {hit_rates:?}");
}

#[test]
fn e15_fleet_partitioning_beats_the_single_server() {
    // e15 bakes its own asserts in (fleet hit rate ≥ single server,
    // exact failover accounting, per-request tolerance, fallback
    // coverage); running it at quick sizes is the regression guard.
    // Check the headline comparison on top.
    let tables = run_by_id("e15");
    assert_eq!(tables.len(), 2);
    let csv = tables[0].to_csv();
    let rows: Vec<Vec<String>> =
        csv.lines().skip(1).map(|l| l.split(',').map(str::to_string).collect()).collect();
    let single_rate: f64 = rows[0][5].parse().expect("numeric hit rate");
    let fleet_rate: f64 = rows[1][5].parse().expect("numeric hit rate");
    assert!(
        fleet_rate > single_rate + 0.5,
        "partitioning must decisively beat the thrashing single server: {single_rate} vs {fleet_rate}"
    );
}

#[test]
fn e16_tiered_serving_converges_and_meets_the_latency_bar() {
    // e16 bakes its own asserts in (greedy gap under the documented
    // bound, zero heuristic-tier entries after the drain, refinement
    // nodes ≤ cold nodes, ≥ 10× tier-1 speedup at n = 12); running it
    // at quick sizes is the regression guard. Check the headline
    // speedup column parses and clears the bar on top.
    let tables = run_by_id("e16");
    assert_eq!(tables.len(), 3);
    let csv = tables[2].to_csv();
    let row: Vec<&str> = csv.lines().nth(1).expect("one data row").split(',').collect();
    let speedup: f64 =
        row[3].trim_end_matches('×').parse().expect("numeric speedup before the × suffix");
    assert!(speedup >= 10.0, "tier-1 speedup column must report ≥ 10×, got {speedup}");
}

#[test]
fn e17_resilience_keeps_keys_warm_across_a_grow() {
    // e17 bakes its own asserts in (every pre-grow key still hits with
    // bit-identical cost after the handoff, exact breaker counter
    // accounting, typed-errors-only chaos with zero protocol errors);
    // running it at quick sizes is the regression guard. Check the
    // headline retention numbers on top.
    let tables = run_by_id("e17");
    assert_eq!(tables.len(), 3);
    let csv = tables[0].to_csv();
    let rows: Vec<Vec<String>> =
        csv.lines().skip(1).map(|l| l.split(',').map(str::to_string).collect()).collect();
    // Rows: cold fill, steady fleet of 2, first cycle after the grow.
    let steady_rate: f64 = rows[1][4].parse().expect("numeric hit rate");
    let post_grow_rate: f64 = rows[2][4].parse().expect("numeric hit rate");
    assert!(
        post_grow_rate >= steady_rate - 0.05,
        "the grow must not dent the hit rate by more than 5 points: {steady_rate} vs {post_grow_rate}"
    );
    assert!(post_grow_rate >= 0.5, "at least half the keys stay warm, got {post_grow_rate}");
    let moved: f64 = rows[2][5].parse().expect("numeric moved-keys count");
    assert!(moved >= 1.0, "the resize must actually move part of the keyspace");
}

#[test]
fn e18_telemetry_accounts_for_the_rtt_and_soaks_clean() {
    // e18 bakes its own asserts in (quantile estimates within the
    // documented relative-error bound, merge bit-equivalence, stage
    // means summing to the client RTT within the wire-and-wakeup slack,
    // zero protocol errors under the open-loop soak); running it at
    // quick sizes is the regression guard. Check the headline shapes on
    // top.
    let tables = run_by_id("e18");
    assert_eq!(tables.len(), 3);
    // Accuracy table: every probed quantile's error stayed under its
    // bound (columns: shape, quantile, exact, histogram, error, bound).
    for line in tables[0].to_csv().lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        let error: f64 = fields[4].parse().expect("numeric error");
        let bound: f64 = fields[5].parse().expect("numeric bound");
        assert!(error <= bound, "quantile error past the bound in row: {line}");
    }
    // Soak table: one row per request class, all three classes driven.
    assert_eq!(tables[2].row_count(), 3);
}

#[test]
fn artifacts_are_written_when_requested() {
    let dir = std::env::temp_dir().join(format!("dsq-harness-test-{}", std::process::id()));
    let ctx = ExperimentContext { quick: true, out_dir: Some(dir.clone()) };
    let registry = all_experiments();
    let e6 = registry.iter().find(|e| e.id == "e6").expect("registered");
    run_experiment(e6, &ctx);
    assert!(dir.join("e6.md").exists());
    assert!(dir.join("e6.csv").exists());
    let md = std::fs::read_to_string(dir.join("e6.md")).expect("readable");
    assert!(md.contains("### E6"));
    std::fs::remove_dir_all(&dir).ok();
}
