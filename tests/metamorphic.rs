//! Metamorphic tests for the cost model and the warm-started search.
//!
//! Three relations that must hold without knowing any instance's true
//! optimum:
//!
//! * **Relabel invariance** — permuting the services (and the rows/
//!   columns of the `CommMatrix`, the sink vector, and the precedence
//!   edges with them) cannot change the optimal bottleneck cost, and the
//!   optimizer's plan for the relabeled instance must map back to an
//!   equally good plan of the original. The cost is *exactly* equal
//!   (bit-level): a plan's terms multiply the same floats in the same
//!   order under either labeling, so the plan-cost sets coincide.
//! * **Scale linearity** — multiplying every cost, transfer, and sink
//!   entry by λ scales each Eq. 1 term by λ, so the optimal cost scales
//!   by exactly λ and the optimal plan is unchanged. With λ a power of
//!   two the float arithmetic is exact, so equality is bit-level.
//! * **Warm = cold** — seeding the search with an incumbent
//!   (`BnbConfig::initial_incumbent`, the serving layer's warm start)
//!   must return the cold search's plan bit-for-bit: a strictly
//!   suboptimal seed only tightens pruning without touching the
//!   trajectory to the first optimal candidate, and an optimal seed is
//!   returned as-is. Node counts must never exceed the cold search's.
//!
//! The corpus spans all seven workload families plus netsim-backed
//! instances in both σ regimes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use service_ordering::core::{
    bottleneck_cost, optimize_parallel, optimize_with, BnbConfig, CommMatrix, Plan, QueryInstance,
    Service,
};
use service_ordering::workloads::{generate, Family};
use std::num::NonZeroUsize;

/// The shared corpus: every workload family at two sizes/seeds. Sizes
/// stay small enough that the full suite is a few seconds.
fn corpus() -> Vec<QueryInstance> {
    let mut instances = Vec::new();
    for family in Family::ALL {
        for (n, seed) in [(6usize, 5u64), (9, 6)] {
            instances.push(generate(family, n, seed));
        }
    }
    instances
}

/// Relabels an instance: service `i` of the result is service
/// `perm[i]` of the original.
fn relabel(inst: &QueryInstance, perm: &[usize]) -> QueryInstance {
    let n = inst.len();
    QueryInstance::builder()
        .name(format!("{}-relabel", inst.name()))
        .services(perm.iter().map(|&o| inst.services()[o].clone()))
        .comm(CommMatrix::from_fn(n, |i, j| inst.transfer(perm[i], perm[j])))
        .sink(perm.iter().map(|&o| inst.sink_cost(o)).collect())
        .build()
        .expect("relabeling preserves validity")
}

/// Uniformly scales every cost, transfer, and sink entry by `factor`.
fn scaled(inst: &QueryInstance, factor: f64) -> QueryInstance {
    let n = inst.len();
    QueryInstance::builder()
        .name(format!("{}-x{factor}", inst.name()))
        .services(inst.services().iter().map(|s| Service::new(s.cost() * factor, s.selectivity())))
        .comm(CommMatrix::from_fn(n, |i, j| inst.transfer(i, j) * factor))
        .sink((0..n).map(|i| inst.sink_cost(i) * factor).collect())
        .build()
        .expect("scaling preserves validity")
}

#[test]
fn optimal_cost_is_invariant_under_relabeling() {
    let mut rng = StdRng::seed_from_u64(404);
    for inst in corpus() {
        let original = optimize_with(&inst, &BnbConfig::paper());
        for _ in 0..3 {
            // A uniformly random permutation (Fisher–Yates).
            let n = inst.len();
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            let relabeled_inst = relabel(&inst, &perm);
            let relabeled = optimize_with(&relabeled_inst, &BnbConfig::paper());
            assert_eq!(
                relabeled.cost().to_bits(),
                original.cost().to_bits(),
                "{}: relabeling changed the optimal cost ({} vs {})",
                inst.name(),
                relabeled.cost(),
                original.cost()
            );
            // The relabeled plan, mapped back through the permutation,
            // must achieve the same cost on the original instance.
            let mapped: Vec<usize> = relabeled.plan().indices().iter().map(|&i| perm[i]).collect();
            let mapped_plan = Plan::new(mapped).expect("permutation maps to permutation");
            assert_eq!(
                bottleneck_cost(&inst, &mapped_plan).to_bits(),
                original.cost().to_bits(),
                "{}: mapped-back plan is not optimal on the original",
                inst.name()
            );
        }
    }
}

#[test]
fn optimal_cost_scales_linearly_and_the_plan_is_invariant() {
    // Powers of two: multiplication is exact in binary floating point,
    // so the metamorphic relation holds bit-for-bit, not within an ε.
    for factor in [0.25f64, 4.0] {
        for inst in corpus() {
            let base = optimize_with(&inst, &BnbConfig::paper());
            let scaled_result = optimize_with(&scaled(&inst, factor), &BnbConfig::paper());
            assert_eq!(
                scaled_result.cost().to_bits(),
                (base.cost() * factor).to_bits(),
                "{}: cost must scale by exactly λ = {factor}",
                inst.name()
            );
            assert_eq!(
                scaled_result.plan(),
                base.plan(),
                "{}: optimal plan must not depend on the scale λ = {factor}",
                inst.name()
            );
        }
    }
}

#[test]
fn warm_started_search_is_bit_identical_to_cold() {
    for inst in corpus() {
        let cold = optimize_with(&inst, &BnbConfig::paper());

        // Warm-start from the cold optimum itself: returned unchanged.
        let warm_opt =
            optimize_with(&inst, &BnbConfig::paper().with_initial_incumbent(cold.plan().clone()));
        assert_eq!(warm_opt.plan(), cold.plan(), "{}: optimal seed", inst.name());
        assert_eq!(warm_opt.cost().to_bits(), cold.cost().to_bits());
        assert!(
            warm_opt.stats().nodes_visited <= cold.stats().nodes_visited,
            "{}: warm start enlarged the tree",
            inst.name()
        );

        // Warm-start from an arbitrary (generally suboptimal) seed.
        let seed_plan = Plan::identity(inst.len());
        let seed_cost = bottleneck_cost(&inst, &seed_plan);
        let warm =
            optimize_with(&inst, &BnbConfig::paper().with_initial_incumbent(seed_plan.clone()));
        assert_eq!(warm.cost().to_bits(), cold.cost().to_bits(), "{}", inst.name());
        assert!(warm.stats().nodes_visited <= cold.stats().nodes_visited);
        if seed_cost > cold.cost() {
            assert_eq!(
                warm.plan(),
                cold.plan(),
                "{}: suboptimal seed must not change the returned plan",
                inst.name()
            );
        } else {
            // The identity plan happened to be optimal: it is returned.
            assert_eq!(warm.plan(), &seed_plan, "{}", inst.name());
        }

        // The parallel path honours the same contract (its deterministic
        // replay makes the result thread-count independent).
        let warm_parallel = optimize_parallel(
            &inst,
            &BnbConfig::paper().with_initial_incumbent(cold.plan().clone()),
            NonZeroUsize::new(3).expect("non-zero"),
        );
        assert_eq!(warm_parallel.cost().to_bits(), cold.cost().to_bits(), "{}", inst.name());
        let cold_parallel =
            optimize_parallel(&inst, &BnbConfig::paper(), NonZeroUsize::new(3).expect("nz"));
        assert_eq!(
            warm_parallel.plan(),
            cold_parallel.plan(),
            "{}: parallel warm vs parallel cold",
            inst.name()
        );
    }
}
