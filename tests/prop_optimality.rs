//! Property-based tests over arbitrary instances: the pruning lemmas
//! never lose the optimum, returned plans are valid, and the cost
//! metric's structural properties hold.
//!
//! Case budget: the checked-in `proptest_config` counts below are sized
//! to keep this suite well under a minute. CI additionally exports
//! `PROPTEST_CASES` to cap every property in the workspace uniformly;
//! raise it locally (e.g. `PROPTEST_CASES=2048 cargo test`) for a more
//! exhaustive sweep.

use proptest::prelude::*;
use service_ordering::baselines::subset_dp;
use service_ordering::core::{
    bottleneck_cost, cost_terms, optimize_with, BnbConfig, CommMatrix, Plan, QueryInstance, Service,
};

/// Strategy: a small arbitrary instance, optionally with proliferative
/// selectivities and sink costs.
fn arb_instance(max_n: usize) -> impl Strategy<Value = QueryInstance> {
    (2..=max_n).prop_flat_map(|n| {
        let services = proptest::collection::vec((0.0f64..4.0, 0.0f64..2.5), n..=n);
        let comm = proptest::collection::vec(0.0f64..3.0, n * n..=n * n);
        let sink = proptest::collection::vec(0.0f64..1.0, n..=n);
        (services, comm, sink).prop_map(move |(sv, cm, sink)| {
            QueryInstance::builder()
                .name("proptest")
                .services(sv.into_iter().map(|(c, s)| Service::new(c, s)))
                .comm(CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { cm[i * n + j] }))
                .sink(sink)
                .build()
                .expect("generated instances are valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The headline invariant: every ablation returns the exact optimum.
    #[test]
    fn all_configs_return_the_dp_optimum(inst in arb_instance(6)) {
        let reference = subset_dp(&inst).expect("within limit").cost();
        for cfg in [BnbConfig::paper(), BnbConfig::incumbent_only(), BnbConfig::extended()] {
            let result = optimize_with(&inst, &cfg);
            prop_assert!(result.is_proven_optimal());
            prop_assert!((result.cost() - reference).abs() <= 1e-9 * reference.max(1.0),
                "cfg {:?}: {} vs {}", cfg, result.cost(), reference);
            // The reported cost is achieved by the reported plan.
            let achieved = bottleneck_cost(&inst, result.plan());
            prop_assert!((result.cost() - achieved).abs() <= 1e-9 * achieved.max(1.0));
        }
    }

    /// Eq. 1 structure: the bottleneck is the max of the terms, terms are
    /// non-negative, and prefix products multiply out.
    #[test]
    fn cost_terms_are_consistent(inst in arb_instance(7)) {
        let n = inst.len();
        let plan = Plan::identity(n);
        let terms = cost_terms(&inst, &plan);
        prop_assert_eq!(terms.len(), n);
        let max = terms.iter().map(|t| t.term).fold(0.0f64, f64::max);
        let cost = bottleneck_cost(&inst, &plan);
        prop_assert!((max - cost).abs() <= 1e-12 * cost.max(1.0));
        let mut prefix = 1.0;
        for (k, term) in terms.iter().enumerate() {
            prop_assert!((term.input_fraction - prefix).abs() <= 1e-9 * prefix.max(1.0));
            prop_assert!(term.term >= 0.0);
            prefix *= inst.selectivity(plan.service_at(k).index());
        }
    }

    /// Lemma 1 as a black-box property: appending a service to a prefix
    /// never lowers the bottleneck of the *finalized* part. We check the
    /// contrapositive on complete plans: the bottleneck of the first k
    /// positions (treating position k-1's transfer as realized) is
    /// monotone in k.
    #[test]
    fn finalized_terms_are_monotone_under_extension(inst in arb_instance(7)) {
        let n = inst.len();
        let plan = Plan::identity(n);
        let terms = cost_terms(&inst, &plan);
        let mut running = 0.0f64;
        let mut maxima = Vec::with_capacity(n);
        for t in &terms {
            running = running.max(t.term);
            maxima.push(running);
        }
        for w in maxima.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    /// Uniform relaxation sanity: making the network uniform at the mean
    /// never changes the *set* of services, and the optimizer still
    /// matches the DP there (the [1] special case).
    #[test]
    fn uniform_special_case_agrees(inst in arb_instance(6)) {
        let t = inst.comm().mean_off_diagonal();
        let relaxed = inst.with_uniform_comm(t);
        let reference = subset_dp(&relaxed).expect("within limit").cost();
        let result = optimize_with(&relaxed, &BnbConfig::paper());
        prop_assert!((result.cost() - reference).abs() <= 1e-9 * reference.max(1.0));
    }
}
