//! Cross-crate checks of the parallel optimizer and the plan-diagnostics
//! report against the workload families.

use service_ordering::core::{
    bottleneck_cost, explain, optimize, optimize_parallel, sum_cost, BnbConfig,
};
use service_ordering::workloads::{generate, random_dag, Family, Sweep};
use std::num::NonZeroUsize;

fn threads(k: usize) -> NonZeroUsize {
    NonZeroUsize::new(k).expect("non-zero")
}

#[test]
fn parallel_matches_sequential_across_families() {
    let points = Sweep::new().families(Family::ALL).sizes([6, 9]).seeds(0..2).build();
    for point in &points {
        let sequential = optimize(&point.instance);
        let parallel = optimize_parallel(&point.instance, &BnbConfig::paper(), threads(3));
        assert!(
            (sequential.cost() - parallel.cost()).abs() <= 1e-9 * sequential.cost().max(1.0),
            "{} n={} seed={}: {} vs {}",
            point.family.name(),
            point.n,
            point.seed,
            sequential.cost(),
            parallel.cost()
        );
        assert!(parallel.is_proven_optimal());
    }
}

#[test]
fn parallel_respects_precedence() {
    for seed in 0..3 {
        let base = generate(Family::UniformRandom, 8, seed);
        let inst = service_ordering::core::QueryInstance::builder()
            .name("parallel-prec")
            .services(base.services().to_vec())
            .comm(base.comm().clone())
            .precedence(random_dag(8, 0.3, seed))
            .build()
            .expect("valid");
        let result = optimize_parallel(&inst, &BnbConfig::extended(), threads(2));
        assert!(result.plan().satisfies(inst.precedence().expect("present")));
        assert!((result.cost() - optimize(&inst).cost()).abs() <= 1e-9 * result.cost().max(1.0));
    }
}

#[test]
fn explain_reports_are_internally_consistent() {
    let points = Sweep::new()
        .families([Family::Clustered, Family::ProliferativeMix])
        .sizes([7])
        .seeds(0..3)
        .build();
    for point in &points {
        let inst = &point.instance;
        let plan = optimize(inst).into_plan();
        let report = explain(inst, &plan);
        assert_eq!(report.cost(), bottleneck_cost(inst, &plan));
        assert_eq!(report.sum_cost(), sum_cost(inst, &plan));
        assert!(report.pipelining_gain() >= 1.0 - 1e-12);
        // Optimal plans are at least adjacent-swap optimal.
        assert!(
            report.is_adjacent_swap_optimal(),
            "{} seed {}: an adjacent swap beats the 'optimal' plan",
            point.family.name(),
            point.seed
        );
        // Utilizations: exactly one position at 1.0, none above.
        let utils = report.utilizations();
        assert!(utils.iter().all(|&u| u <= 1.0 + 1e-12));
        assert!(utils.iter().any(|&u| (u - 1.0).abs() < 1e-12));
    }
}

#[test]
fn explain_flags_suboptimal_plans() {
    // A deliberately bad plan on a heterogeneous instance should usually
    // admit an improving adjacent swap; verify the report exposes it via
    // swap costs rather than silently agreeing.
    let inst = generate(Family::HubSpoke, 8, 4);
    let optimal = optimize(&inst);
    let bad_order: Vec<usize> = optimal.plan().indices().into_iter().rev().collect();
    let bad = service_ordering::core::Plan::new(bad_order).expect("permutation");
    let report = explain(&inst, &bad);
    let best_swap =
        report.adjacent_swap_costs().iter().flatten().copied().fold(f64::INFINITY, f64::min);
    // Either some swap improves, or the reversed plan is (rarely) also a
    // local optimum — but it can never beat the true optimum.
    assert!(report.cost() >= optimal.cost() - 1e-9);
    assert!(best_swap.is_finite());
}
