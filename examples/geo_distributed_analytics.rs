//! Geo-distributed analytics: twelve services on hosts scattered across a
//! wide-area plane. Shows how much response time the decentralized-aware
//! optimizer recovers as network heterogeneity grows, and how the
//! branch-and-bound's pruning keeps the search tractable.
//!
//! ```sh
//! cargo run --release --example geo_distributed_analytics
//! ```

use service_ordering::baselines::{best_greedy, subset_dp, uniform_reference_plan};
use service_ordering::core::{bottleneck_cost, optimize, QueryInstance, SearchStats};
use service_ordering::netsim::{heterogeneity, scale_spread};
use service_ordering::workloads::{generate, Family};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = generate(Family::Euclidean, 12, 7);
    println!("{base}");
    println!("network heterogeneity (CV of t_ij): {:.3}\n", heterogeneity(base.comm()));

    // Sweep the spread of the transfer matrix from uniform (0) to
    // exaggerated (4×) and watch the gap to a network-oblivious plan.
    println!("spread  CV     optimal  oblivious  greedy   gap(oblivious)");
    for factor in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let instance = QueryInstance::builder()
            .name(format!("geo-spread-{factor}"))
            .services(base.services().to_vec())
            .comm(scale_spread(base.comm(), factor))
            .build()?;
        let optimal = optimize(&instance);
        let (oblivious_plan, _) = uniform_reference_plan(&instance)?;
        let oblivious = bottleneck_cost(&instance, &oblivious_plan);
        let greedy = best_greedy(&instance).cost();
        println!(
            "{factor:<7.1} {:<6.3} {:<8.4} {:<10.4} {:<8.4} {:.2}×",
            heterogeneity(instance.comm()),
            optimal.cost(),
            oblivious,
            greedy,
            oblivious / optimal.cost()
        );
    }

    // How hard did the optimizer work? Compare with the exact DP and the
    // size of the unpruned search space.
    let result = optimize(&base);
    let dp = subset_dp(&base)?;
    println!("\nbranch-and-bound : {} nodes visited", result.stats().nodes_visited);
    println!("subset DP        : {} transitions", dp.states_expanded());
    println!("unpruned DFS     : {} prefixes", SearchStats::unpruned_prefix_count(base.len()));
    println!("agreement        : B&B {:.6} vs DP {:.6}", result.cost(), dp.cost());
    Ok(())
}
