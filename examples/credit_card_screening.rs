//! The paper's §1 motivating scenario, end to end: screen potential
//! customers by credit cards and payment history, with the services free
//! to run in any order and hosts spread over three regions.
//!
//! Finds the optimal decentralized ordering, compares it against the
//! "call the lookup first" plan and against the best plan a
//! network-oblivious optimizer (Srivastava et al., VLDB'06) would pick,
//! then validates the predictions in the discrete-event simulator.
//!
//! ```sh
//! cargo run --release --example credit_card_screening
//! ```

use service_ordering::baselines::uniform_reference_plan;
use service_ordering::core::{bottleneck_cost, optimize, Plan};
use service_ordering::simulator::{simulate, SimConfig};
use service_ordering::workloads::credit_pipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = credit_pipeline();
    println!("{instance}");

    let optimal = optimize(&instance);
    println!("optimal plan    : {}  (cost {:.3})", optimal.plan(), optimal.cost());

    // A plausible hand-written plan: call the proliferative card lookup
    // first, filter afterwards.
    let naive = Plan::new(vec![1, 4, 3, 0, 2, 5])?;
    let naive_cost = bottleneck_cost(&instance, &naive);
    println!("lookup-first    : {naive}  (cost {naive_cost:.3})");

    // What a uniform-communication optimizer would choose, evaluated on
    // the real heterogeneous network.
    let (oblivious, _) = uniform_reference_plan(&instance)?;
    let oblivious_cost = bottleneck_cost(&instance, &oblivious);
    println!("network-oblivious: {oblivious}  (cost {oblivious_cost:.3})");

    println!(
        "\nspeedup vs lookup-first: {:.2}×; vs network-oblivious: {:.2}×",
        naive_cost / optimal.cost(),
        oblivious_cost / optimal.cost()
    );

    // Validate in the simulator: measured throughput ≈ 1 / predicted cost.
    println!("\nsimulating 20k tuples through each plan…");
    for (name, plan) in [
        ("optimal", optimal.plan().clone()),
        ("lookup-first", naive),
        ("network-oblivious", oblivious),
    ] {
        let report =
            simulate(&instance, &plan, &SimConfig { tuples: 20_000, ..SimConfig::default() });
        let predicted = 1.0 / bottleneck_cost(&instance, &plan);
        println!(
            "  {name:<18} predicted {predicted:>8.3}/s   simulated {:>8.3}/s   ({} tuples delivered)",
            report.throughput, report.tuples_delivered
        );
    }
    Ok(())
}
