//! Quickstart: model a tiny decentralized query, find the optimal service
//! ordering, and inspect the plan.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use service_ordering::core::{
    bottleneck_cost, cost_terms, optimize, CommMatrix, ModelError, QueryInstance, Service,
};

fn main() -> Result<(), ModelError> {
    // Three services on three hosts. Costs are seconds per tuple;
    // selectivity is output/input tuples (σ < 1 filters, σ > 1 expands).
    let instance = QueryInstance::builder()
        .name("quickstart")
        .service(Service::new(0.9, 3.0).with_name("card-lookup"))
        .service(Service::new(0.4, 0.5).with_name("history-filter"))
        .service(Service::new(0.2, 0.7).with_name("region-filter"))
        .comm(CommMatrix::from_rows(vec![
            vec![0.00, 0.15, 0.40],
            vec![0.15, 0.00, 0.05],
            vec![0.40, 0.05, 0.00],
        ])?)
        .build()?;

    println!("{instance}");

    // The optimizer implements the PODC'10 branch-and-bound: optimal under
    // the bottleneck cost metric (Eq. 1), which governs pipelined
    // response time.
    let result = optimize(&instance);
    println!("optimal plan : {}", result.plan());
    println!("bottleneck   : {:.4} s/tuple", result.cost());
    println!("throughput   : {:.3} tuples/s", 1.0 / result.cost());
    println!("proven       : {}", result.is_proven_optimal());
    println!("search stats :\n{}", result.stats());

    // Every position's cost term; the max is the bottleneck.
    println!("\nper-position terms:");
    for term in cost_terms(&instance, result.plan()) {
        println!("  {term}");
    }

    // Compare against the worst ordering to see why this matters.
    let mut worst = (result.plan().clone(), result.cost());
    for a in 0..3usize {
        for b in 0..3usize {
            for c in 0..3usize {
                if let Ok(plan) = service_ordering::core::Plan::new(vec![a, b, c]) {
                    let cost = bottleneck_cost(&instance, &plan);
                    if cost > worst.1 {
                        worst = (plan, cost);
                    }
                }
            }
        }
    }
    println!(
        "\nworst plan {} costs {:.4} s/tuple — {:.2}× slower",
        worst.0,
        worst.1,
        worst.1 / result.cost()
    );
    Ok(())
}
