//! A scientific-workflow flavoured query: an extraction step must run
//! first, an archival step last, and a pair of enrichment services must
//! follow the extraction — precedence constraints on top of the ordering
//! problem (the paper's "minor modifications" generalization).
//!
//! ```sh
//! cargo run --release --example precedence_workflow
//! ```

use service_ordering::baselines::subset_dp;
use service_ordering::core::{optimize, CommMatrix, PrecedenceDag, QueryInstance, Service};
use service_ordering::runtime::{run_pipeline, RuntimeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 0 extract → {1 parse, 2 geo-tag} → anywhere; 5 archive last.
    let mut dag = PrecedenceDag::new(6)?;
    dag.add_edge(0, 1)?;
    dag.add_edge(0, 2)?;
    for s in 0..5 {
        dag.add_edge(s, 5)?;
    }

    let instance = QueryInstance::builder()
        .name("sensor-workflow")
        .service(Service::new(0.5, 1.0).with_name("extract"))
        .service(Service::new(0.8, 0.9).with_name("parse"))
        .service(Service::new(1.1, 0.7).with_name("geo-tag"))
        .service(Service::new(0.6, 0.3).with_name("quality-filter"))
        .service(Service::new(1.4, 0.5).with_name("dedupe"))
        .service(Service::new(0.3, 1.0).with_name("archive"))
        .comm(CommMatrix::from_fn(6, |i, j| {
            if i == j {
                0.0
            } else {
                0.05 + 0.1 * ((i * 7 + j * 3) % 5) as f64
            }
        }))
        .precedence(dag)
        .build()?;

    println!("{instance}");
    println!(
        "constraints: extract first of its group, archive last, {} edges\n",
        instance.precedence().expect("built with precedence").edge_count()
    );

    let result = optimize(&instance);
    println!("optimal plan : {}", result.plan());
    println!("cost         : {:.4} s/tuple", result.cost());
    assert!(result.plan().satisfies(instance.precedence().expect("present")));

    // Cross-check with the exact DP (also precedence-aware).
    let dp = subset_dp(&instance)?;
    println!(
        "subset DP    : {:.4} (agrees: {})",
        dp.cost(),
        (dp.cost() - result.cost()).abs() < 1e-9
    );

    // Run it for real on threads (scaled to microseconds).
    let report = run_pipeline(
        &instance,
        result.plan(),
        &RuntimeConfig { tuples: 500, time_scale_us: 50.0, ..RuntimeConfig::default() },
    );
    println!(
        "\nthreaded run : {} tuples in, {} archived, makespan {:.2?}, busiest stage #{}",
        report.tuples_in,
        report.tuples_delivered,
        report.makespan,
        report.bottleneck_position()
    );
    Ok(())
}
