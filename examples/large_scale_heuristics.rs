//! Beyond exact reach: ordering sixty services. Exact search is hopeless
//! at n = 60 (60! plans), so this example drives the heuristic toolbox —
//! greedy construction, local search, simulated annealing, random
//! sampling — plus a *budgeted* branch-and-bound that returns its best
//! incumbent when the node budget runs out.
//!
//! ```sh
//! cargo run --release --example large_scale_heuristics
//! ```

use service_ordering::baselines::{
    best_greedy, local_search, random_sampling, simulated_annealing, AnnealingConfig,
    LocalSearchConfig,
};
use service_ordering::core::{optimize_with, BnbConfig};
use service_ordering::workloads::{generate, Family};
use std::time::Instant;

fn main() {
    let instance = generate(Family::Clustered, 60, 3);
    println!("instance: {} services, clustered network\n", instance.len());

    let mut results: Vec<(String, f64, std::time::Duration)> = Vec::new();
    let mut record = |name: &str, cost: f64, elapsed: std::time::Duration| {
        println!("{name:<22} cost {cost:>9.4}   ({elapsed:.2?})");
        results.push((name.to_string(), cost, elapsed));
    };

    let t0 = Instant::now();
    let sample = random_sampling(&instance, 1_000, 1);
    record("random best-of-1000", sample.cost(), t0.elapsed());
    println!("{:<22} cost {:>9.4}", "random mean", sample.mean_cost());

    let t0 = Instant::now();
    let greedy = best_greedy(&instance);
    record("greedy (best rule)", greedy.cost(), t0.elapsed());

    let t0 = Instant::now();
    let ls = local_search(&instance, &LocalSearchConfig { restarts: 3, ..Default::default() });
    record("local search", ls.cost(), t0.elapsed());

    let t0 = Instant::now();
    let sa =
        simulated_annealing(&instance, &AnnealingConfig { steps: 60_000, ..Default::default() });
    record("simulated annealing", sa.cost(), t0.elapsed());

    // Budgeted exact search: seeds with greedy, explores until the node
    // budget is spent, returns the incumbent (a proven optimum only if it
    // finished — it won't at this size).
    let t0 = Instant::now();
    let cfg = BnbConfig::extended().with_node_limit(200_000);
    let bnb = optimize_with(&instance, &cfg);
    record(
        if bnb.is_proven_optimal() { "B&B (complete!)" } else { "B&B (budgeted)" },
        bnb.cost(),
        t0.elapsed(),
    );
    println!(
        "  budgeted B&B visited {} nodes, {} incumbent updates",
        bnb.stats().nodes_visited,
        bnb.stats().candidates_recorded
    );

    let best = results.iter().min_by(|a, b| a.1.total_cmp(&b.1)).expect("at least one method ran");
    println!("\nbest method here: {} at cost {:.4}", best.0, best.1);
}
