#!/usr/bin/env bash
# CI smoke of the plan-serving daemon through the real binary: start
# `dsq serve` on a Unix socket, drive it with `dsq client`, check the
# hit-rate summary, then close the daemon's stdin and assert a clean
# EOF-triggered drain. Mirrors crates/cli/tests/server_smoke.rs, but
# through the same shell path an operator would use.
#
# Usage: scripts/server_smoke.sh [DSQ_BINARY]
#   DSQ_BINARY   defaults to target/release/dsq (built by the CI release
#                build step)
set -euo pipefail
cd "$(dirname "$0")/.."

bin="${1:-target/release/dsq}"
if ! [ -x "$bin" ]; then
    echo "server_smoke: $bin not built (run cargo build --release first)" >&2
    exit 1
fi

workdir="$(mktemp -d)"
sock="$workdir/dsq.sock"
snapshot="$workdir/plans.dsqc"
server_log="$workdir/server.log"
fifo="$workdir/stdin.fifo"
server_pid=""
cleanup() {
    exec 3>&- 2>/dev/null || true
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

"$bin" generate --family clustered -n 7 --seed 11 > "$workdir/q.dsq"

# Hold the daemon's stdin open on a FIFO; closing fd 3 later is the
# graceful-shutdown signal (single worker: the single-core CI container
# measures oversubscription, not speedup, beyond that).
mkfifo "$fifo"
"$bin" serve --unix "$sock" --workers 1 --snapshot "$snapshot" < "$fifo" > "$server_log" &
server_pid=$!
exec 3>"$fifo"

for _ in $(seq 1 300); do
    [ -S "$sock" ] && break
    sleep 0.1
done
[ -S "$sock" ] || { echo "server_smoke: socket never appeared" >&2; cat "$server_log" >&2; exit 1; }

"$bin" client --unix "$sock" ping | grep -qx "pong"
"$bin" client --unix "$sock" optimize "$workdir/q.dsq" --repeat 3 > "$workdir/served.out"
grep -q " cold " "$workdir/served.out"
grep -q " hit " "$workdir/served.out"
"$bin" client --unix "$sock" stats | tee "$workdir/stats.out"
grep -q "requests 3 hits 2" "$workdir/stats.out"
grep -q "hit-rate 66.7%" "$workdir/stats.out"

# Close stdin: the daemon must drain and exit 0 on its own.
exec 3>&-
wait "$server_pid"
server_pid=""
grep -q "served 3 requests" "$server_log"
grep -q "hit-rate" "$server_log"
grep -q "drained cleanly" "$server_log"
[ -f "$snapshot" ] || { echo "server_smoke: no final snapshot" >&2; exit 1; }
[ -e "$sock" ] && { echo "server_smoke: socket not unlinked" >&2; exit 1; }

echo "server_smoke: OK (clean drain, snapshot persisted)" >&2
