#!/usr/bin/env bash
# CI smoke of the plan-serving daemon through the real binary: start
# `dsq serve` on a Unix socket, drive it with `dsq client`, check the
# hit-rate summary, then close the daemon's stdin and assert a clean
# EOF-triggered drain. Mirrors crates/cli/tests/server_smoke.rs, but
# through the same shell path an operator would use.
#
# Usage: scripts/server_smoke.sh [DSQ_BINARY]
#   DSQ_BINARY   defaults to target/release/dsq (built by the CI release
#                build step)
set -euo pipefail
cd "$(dirname "$0")/.."

bin="${1:-target/release/dsq}"
if ! [ -x "$bin" ]; then
    echo "server_smoke: $bin not built (run cargo build --release first)" >&2
    exit 1
fi

workdir="$(mktemp -d)"
sock="$workdir/dsq.sock"
snapshot="$workdir/plans.dsqc"
server_log="$workdir/server.log"
fifo="$workdir/stdin.fifo"
# Every spawned daemon registers its PID here; the single EXIT trap
# kills whatever is still running and removes the workdir — no chained
# traps to keep in sync as smoke legs are added.
daemon_pids=()
cleanup() {
    exec 3>&- 2>/dev/null || true
    for pid in ${daemon_pids[@]+"${daemon_pids[@]}"}; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

"$bin" generate --family clustered -n 7 --seed 11 > "$workdir/q.dsq"

# Hold the daemon's stdin open on a FIFO; closing fd 3 later is the
# graceful-shutdown signal (single worker: the single-core CI container
# measures oversubscription, not speedup, beyond that).
mkfifo "$fifo"
"$bin" serve --unix "$sock" --workers 1 --snapshot "$snapshot" < "$fifo" > "$server_log" &
server_pid=$!
daemon_pids+=("$server_pid")
exec 3>"$fifo"

for _ in $(seq 1 300); do
    [ -S "$sock" ] && break
    sleep 0.1
done
[ -S "$sock" ] || { echo "server_smoke: socket never appeared" >&2; cat "$server_log" >&2; exit 1; }

"$bin" client --unix "$sock" ping | grep -qx "pong"
"$bin" client --unix "$sock" optimize "$workdir/q.dsq" --repeat 3 > "$workdir/served.out"
grep -q " cold " "$workdir/served.out"
grep -q " hit " "$workdir/served.out"
"$bin" client --unix "$sock" stats | tee "$workdir/stats.out"
grep -q "requests 3 hits 2" "$workdir/stats.out"
grep -q "hit-rate 66.7%" "$workdir/stats.out"

# ---- pipelined + connection-scale leg --------------------------------
# Three distinct documents as one coalesced frame: one response line per
# request, in request order (all cold — fresh seeds).
for seed in 12 13 14; do
    "$bin" generate --family clustered -n 7 --seed "$seed" > "$workdir/p$seed.dsq"
done
"$bin" client --unix "$sock" optimize \
    "$workdir/p12.dsq" "$workdir/p13.dsq" "$workdir/p14.dsq" --pipeline \
    > "$workdir/pipelined.out"
[ "$(grep -c " cost " "$workdir/pipelined.out")" -eq 3 ] || \
    { echo "server_smoke: pipelined batch lost responses" >&2; cat "$workdir/pipelined.out" >&2; exit 1; }
[ "$(grep -c " cold " "$workdir/pipelined.out")" -eq 3 ] || \
    { echo "server_smoke: pipelined batch was not served fresh" >&2; exit 1; }
# One reactor thread parks a thousand concurrent idle connections; the
# drain summary proves every one of them stayed live until teardown.
"$bin" client --unix "$sock" hold 1000 > "$workdir/hold.out"
grep -q "held 1000 concurrent connections" "$workdir/hold.out" || \
    { echo "server_smoke: could not hold 1000 connections" >&2; cat "$workdir/hold.out" >&2; exit 1; }
grep -q "drained 1000 held connections: 1000 live, 0 dropped" "$workdir/hold.out" || \
    { echo "server_smoke: held connections were dropped before drain" >&2; cat "$workdir/hold.out" >&2; exit 1; }

# Close stdin: the daemon must drain and exit 0 on its own.
exec 3>&-
wait "$server_pid"
grep -q "served 6 requests" "$server_log"
# The drain summary counts every accepted connection — the held
# thousand included.
conns="$(sed -n 's/.*served 6 requests over \([0-9][0-9]*\) connections.*/\1/p' "$server_log")"
[ "${conns:-0}" -ge 1001 ] || \
    { echo "server_smoke: expected >=1001 connections, saw ${conns:-none}" >&2; cat "$server_log" >&2; exit 1; }
grep -q "hit-rate" "$server_log"
grep -q "drained cleanly" "$server_log"
[ -f "$snapshot" ] || { echo "server_smoke: no final snapshot" >&2; exit 1; }
[ -e "$sock" ] && { echo "server_smoke: socket not unlinked" >&2; exit 1; }

# ---- 2-backend fleet smoke -------------------------------------------
# Two daemons (1 worker each: single-core container), requests sharded
# across them by fingerprint via `client --fleet`, repeats hitting the
# backend caches, then one backend killed and the same stream completing
# via failover.
sock_a="$workdir/fleet-a.sock"
sock_b="$workdir/fleet-b.sock"

"$bin" serve --unix "$sock_a" --workers 1 < /dev/null > "$workdir/fleet-a.log" &
fleet_a_pid=$!
daemon_pids+=("$fleet_a_pid")
"$bin" serve --unix "$sock_b" --workers 1 < /dev/null > "$workdir/fleet-b.log" &
fleet_b_pid=$!
daemon_pids+=("$fleet_b_pid")
for _ in $(seq 1 300); do
    [ -S "$sock_a" ] && [ -S "$sock_b" ] && break
    sleep 0.1
done
[ -S "$sock_a" ] && [ -S "$sock_b" ] || { echo "server_smoke: fleet sockets never appeared" >&2; exit 1; }

# A handful of distinct queries so both backends see traffic
# (fingerprint routing is deterministic in the generator seeds).
fleet_files=()
for seed in 21 22 23 24 25 26; do
    "$bin" generate --family clustered -n 7 --seed "$seed" > "$workdir/fq$seed.dsq"
    fleet_files+=("$workdir/fq$seed.dsq")
done
"$bin" client --fleet "unix://$sock_a,unix://$sock_b" optimize "${fleet_files[@]}" --repeat 2 \
    > "$workdir/fleet.out"
grep -q " cold " "$workdir/fleet.out"
grep -q " hit " "$workdir/fleet.out"
grep -q "fleet: 2 backends served 12 requests" "$workdir/fleet.out"
grep -q "0 failovers, 0 local fallbacks" "$workdir/fleet.out"
# Both partitions carried traffic.
"$bin" client --unix "$sock_a" stats | grep -vq "^requests 0 " || \
    { echo "server_smoke: backend a served nothing" >&2; exit 1; }
"$bin" client --unix "$sock_b" stats | grep -vq "^requests 0 " || \
    { echo "server_smoke: backend b served nothing" >&2; exit 1; }

# Kill backend B; the same stream must complete by failing over to A
# (and the summary must say so).
"$bin" client --unix "$sock_b" shutdown | grep -qx "server draining"
wait "$fleet_b_pid"
"$bin" client --fleet "unix://$sock_a,unix://$sock_b" optimize "${fleet_files[@]}" \
    > "$workdir/failover.out"
grep -q "fleet: 2 backends served 6 requests" "$workdir/failover.out"
grep -q "0 local fallbacks" "$workdir/failover.out"

# ---- warm handoff smoke ----------------------------------------------
# Grow the surviving backend into a 2-backend fleet with the rebalance
# verb: whatever slice of the keyspace the new daemon owns moves over
# warm, and the grown fleet answers the whole stream from cache.
sock_c="$workdir/fleet-c.sock"
"$bin" serve --unix "$sock_c" --workers 1 < /dev/null > "$workdir/fleet-c.log" &
fleet_c_pid=$!
daemon_pids+=("$fleet_c_pid")
for _ in $(seq 1 300); do
    [ -S "$sock_c" ] && break
    sleep 0.1
done
[ -S "$sock_c" ] || { echo "server_smoke: grow socket never appeared" >&2; exit 1; }
"$bin" fleet rebalance --from "unix://$sock_a" --to "unix://$sock_a,unix://$sock_c" \
    > "$workdir/rebalance.out"
grep -q "rebalance complete: moved" "$workdir/rebalance.out"
"$bin" client --fleet "unix://$sock_a,unix://$sock_c" optimize "${fleet_files[@]}" \
    > "$workdir/grown.out"
[ "$(grep -c " hit " "$workdir/grown.out")" -eq 6 ] || \
    { echo "server_smoke: grown fleet lost warm keys" >&2; cat "$workdir/grown.out" >&2; exit 1; }
grep -q "0 failovers, 0 local fallbacks" "$workdir/grown.out"

"$bin" client --unix "$sock_a" shutdown | grep -qx "server draining"
wait "$fleet_a_pid"
"$bin" client --unix "$sock_c" shutdown | grep -qx "server draining"
wait "$fleet_c_pid"

# ---- chaos smoke ------------------------------------------------------
# A daemon injecting deterministic drop/delay/truncate faults into its
# own response frames: individual requests may fail typed (that is the
# point), but the client never hangs, at least one request is served,
# and the daemon still drains cleanly on shutdown.
chaos_sock="$workdir/chaos.sock"
"$bin" serve --unix "$chaos_sock" --workers 1 --chaos 7 < /dev/null > "$workdir/chaos.log" &
chaos_pid=$!
daemon_pids+=("$chaos_pid")
for _ in $(seq 1 300); do
    [ -S "$chaos_sock" ] && break
    sleep 0.1
done
[ -S "$chaos_sock" ] || { echo "server_smoke: chaos socket never appeared" >&2; exit 1; }
served=0
for _ in $(seq 1 8); do
    if "$bin" client --unix "$chaos_sock" optimize "$workdir/q.dsq" > /dev/null 2>&1; then
        served=$((served + 1))
    fi
done
[ "$served" -ge 1 ] || { echo "server_smoke: chaos starved serving entirely" >&2; exit 1; }
# The shutdown acknowledgement itself may be a dropped frame; the drain
# must happen regardless.
"$bin" client --unix "$chaos_sock" shutdown > /dev/null 2>&1 || true
wait "$chaos_pid"
grep -q ", chaos)" "$workdir/chaos.log"
grep -q "drained cleanly" "$workdir/chaos.log"

# ---- open-loop loadgen smoke -----------------------------------------
# A ~2k-request Poisson burst (667 requests x 3 classes) against a fresh
# daemon: every class must report a non-zero p99 and zero protocol
# errors. Latency is measured from each request's scheduled send time,
# so a stalling server cannot hide in generator back-pressure.
lg_sock="$workdir/loadgen.sock"
"$bin" serve --unix "$lg_sock" --workers 1 < /dev/null > "$workdir/loadgen-server.log" &
lg_pid=$!
daemon_pids+=("$lg_pid")
for _ in $(seq 1 300); do
    [ -S "$lg_sock" ] && break
    sleep 0.1
done
[ -S "$lg_sock" ] || { echo "server_smoke: loadgen socket never appeared" >&2; exit 1; }
"$bin" loadgen --unix "$lg_sock" --rate 1500 --requests 667 -n 6 --json \
    > "$workdir/loadgen.json"
grep -q '"schema": "dsq-loadgen/v1"' "$workdir/loadgen.json"
for class in drift boundary pipelined; do
    grep -q "\"class\": \"$class\"" "$workdir/loadgen.json" || \
        { echo "server_smoke: loadgen dropped class $class" >&2; cat "$workdir/loadgen.json" >&2; exit 1; }
done
grep -q '"sent": 667' "$workdir/loadgen.json" || \
    { echo "server_smoke: loadgen lost requests" >&2; cat "$workdir/loadgen.json" >&2; exit 1; }
if grep -Eq '"p99_ns": 0[,}]' "$workdir/loadgen.json"; then
    echo "server_smoke: loadgen reported a zero p99" >&2
    cat "$workdir/loadgen.json" >&2
    exit 1
fi
if grep -Eq '"protocol_errors": [1-9]' "$workdir/loadgen.json"; then
    echo "server_smoke: loadgen saw protocol errors" >&2
    cat "$workdir/loadgen.json" >&2
    exit 1
fi
# The daemon's own stage histograms were live for the whole burst.
"$bin" client --unix "$lg_sock" metrics > "$workdir/loadgen-metrics.out"
head -1 "$workdir/loadgen-metrics.out" | grep -qx "# dsq-metrics v1"
grep -q "histogram server.stage.plan_ns count " "$workdir/loadgen-metrics.out"
"$bin" client --unix "$lg_sock" shutdown | grep -qx "server draining"
wait "$lg_pid"

# ---- tiered serve-batch smoke ----------------------------------------
# First run: every miss is answered at the greedy tier (`tier heur` on
# the output line) and refined to exact before the snapshot is written
# (heuristic-tier entries are never persisted). Second run restores the
# snapshot: pure exact hits, no heuristic answer — the background
# refinement upgraded the hit path across the restart.
batch_dir="$workdir/batch"
mkdir -p "$batch_dir"
for seed in 31 32 33; do
    "$bin" generate --family clustered -n 7 --seed "$seed" > "$batch_dir/b$seed.dsq"
done
tiered_snap="$workdir/tiered.dsqc"
"$bin" serve-batch "$batch_dir" --workers 1 --tiered --snapshot-out "$tiered_snap" \
    > "$workdir/tiered-cold.out"
[ "$(grep -c " tier heur$" "$workdir/tiered-cold.out")" -eq 3 ]
grep -q "tiered: 3 tier-1 answers, 3 refined" "$workdir/tiered-cold.out"
grep -q "wrote snapshot (3 entries)" "$workdir/tiered-cold.out"
"$bin" serve-batch "$batch_dir" --workers 1 --tiered --snapshot-in "$tiered_snap" \
    > "$workdir/tiered-warm.out"
grep -q "cache: 3 hits, 0 warm starts, 0 cold" "$workdir/tiered-warm.out"
grep -q "tiered: 0 tier-1 answers, 0 refined" "$workdir/tiered-warm.out"
if grep -q " tier heur" "$workdir/tiered-warm.out"; then
    echo "server_smoke: restored tiered cache still answered heuristically" >&2
    exit 1
fi

echo "server_smoke: OK (clean drain, pipelined batch, 1k connections held and drained live, snapshot persisted, fleet sharding + failover, warm rebalance, chaos drain, 2k-request open-loop burst, metrics verb, tiered refinement)" >&2
