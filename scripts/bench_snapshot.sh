#!/usr/bin/env bash
# Runs the Criterion benches in quick mode and emits a JSON snapshot of
# median wall-clock per bench — the perf trajectory artifact checked in
# as BENCH_PR<k>.json and run as a CI smoke step.
#
# Usage: scripts/bench_snapshot.sh [OUTPUT.json]
#
#   OUTPUT.json             snapshot destination (default BENCH_PR9.json)
#   DSQ_SNAPSHOT_BENCHES    space-separated bench targets to run
#                           (default: the optimizer + serving set)
#   DSQ_SNAPSHOT_LOADGEN    "off" skips the loadgen soak; otherwise the
#                           script starts a daemon from target/release/dsq
#                           (or DSQ_BINARY) and folds a `dsq loadgen
#                           --json` run into the snapshot's "loadgen" key
#
# The vendored criterion writes one JSON object per benchmark to the file
# named by DSQ_BENCH_JSON (see vendor/criterion); this script wraps those
# lines into a single document with provenance.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR9.json}"
benches="${DSQ_SNAPSHOT_BENCHES:-cost_eval bounds_eval pruning_ablation optimizer_scaling service_throughput server_roundtrip reactor fleet_roundtrip fleet_resize tier_latency}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

for bench in $benches; do
    echo "bench_snapshot: running $bench" >&2
    DSQ_BENCH_JSON="$raw" cargo bench -p dsq-bench --bench "$bench"
done

if ! [ -s "$raw" ]; then
    echo "bench_snapshot: no benchmark results were recorded" >&2
    exit 1
fi

# Open-loop latency soak: start a daemon, drive the three loadgen
# request classes, and capture the per-class p50/p99/p999 JSON so the
# trajectory tracks serving tails alongside the bench medians.
loadgen_json=""
dsq_bin="${DSQ_BINARY:-target/release/dsq}"
if [ "${DSQ_SNAPSHOT_LOADGEN:-on}" = "off" ]; then
    echo "bench_snapshot: loadgen soak disabled" >&2
elif ! [ -x "$dsq_bin" ]; then
    echo "bench_snapshot: $dsq_bin not built; skipping the loadgen soak" >&2
else
    lg_dir="$(mktemp -d)"
    lg_sock="$lg_dir/dsq.sock"
    "$dsq_bin" serve --unix "$lg_sock" --workers 1 < /dev/null > "$lg_dir/server.log" &
    lg_pid=$!
    for _ in $(seq 1 300); do
        [ -S "$lg_sock" ] && break
        sleep 0.1
    done
    if [ -S "$lg_sock" ] && \
        "$dsq_bin" loadgen --unix "$lg_sock" --rate 1000 --requests 500 -n 6 --json \
            > "$lg_dir/loadgen.json"; then
        loadgen_json="$(cat "$lg_dir/loadgen.json")"
        echo "bench_snapshot: captured the loadgen soak" >&2
    else
        echo "bench_snapshot: loadgen soak failed; snapshot continues without it" >&2
    fi
    kill "$lg_pid" 2>/dev/null || true
    wait "$lg_pid" 2>/dev/null || true
    rm -rf "$lg_dir"
fi

{
    echo '{'
    echo '  "schema": "dsq-bench-snapshot/v1",'
    rev="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    # A snapshot from an uncommitted tree must not masquerade as the
    # HEAD commit's numbers — mark it so the trajectory stays honest.
    # Both tracked modifications and untracked files (other than the
    # snapshot being written) count as dirty.
    git update-index -q --refresh 2>/dev/null || true
    untracked="$(git ls-files --others --exclude-standard 2>/dev/null | grep -vFx "$out" || true)"
    if ! git diff-index --quiet HEAD -- 2>/dev/null || [ -n "$untracked" ]; then
        rev="${rev}-dirty"
    fi
    echo "  \"git_rev\": \"$rev\","
    if [ -n "$loadgen_json" ]; then
        echo '  "loadgen":'
        printf '%s' "$loadgen_json" | sed -e 's/^/    /' -e '$s/$/,/'
    fi
    echo "  \"benches\": ["
    sed -e 's/^/    /' -e '$!s/$/,/' "$raw"
    echo '  ]'
    echo '}'
} > "$out"

echo "bench_snapshot: wrote $(grep -c '"bench"' "$out") medians to $out" >&2
