#!/usr/bin/env bash
# Runs the Criterion benches in quick mode and emits a JSON snapshot of
# median wall-clock per bench — the perf trajectory artifact checked in
# as BENCH_PR<k>.json and run as a CI smoke step.
#
# Usage: scripts/bench_snapshot.sh [OUTPUT.json]
#
#   OUTPUT.json             snapshot destination (default BENCH_PR8.json)
#   DSQ_SNAPSHOT_BENCHES    space-separated bench targets to run
#                           (default: the optimizer + serving set)
#
# The vendored criterion writes one JSON object per benchmark to the file
# named by DSQ_BENCH_JSON (see vendor/criterion); this script wraps those
# lines into a single document with provenance.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR8.json}"
benches="${DSQ_SNAPSHOT_BENCHES:-cost_eval bounds_eval pruning_ablation optimizer_scaling service_throughput server_roundtrip reactor fleet_roundtrip fleet_resize tier_latency}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

for bench in $benches; do
    echo "bench_snapshot: running $bench" >&2
    DSQ_BENCH_JSON="$raw" cargo bench -p dsq-bench --bench "$bench"
done

if ! [ -s "$raw" ]; then
    echo "bench_snapshot: no benchmark results were recorded" >&2
    exit 1
fi

{
    echo '{'
    echo '  "schema": "dsq-bench-snapshot/v1",'
    rev="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    # A snapshot from an uncommitted tree must not masquerade as the
    # HEAD commit's numbers — mark it so the trajectory stays honest.
    # Both tracked modifications and untracked files (other than the
    # snapshot being written) count as dirty.
    git update-index -q --refresh 2>/dev/null || true
    untracked="$(git ls-files --others --exclude-standard 2>/dev/null | grep -vFx "$out" || true)"
    if ! git diff-index --quiet HEAD -- 2>/dev/null || [ -n "$untracked" ]; then
        rev="${rev}-dirty"
    fi
    echo "  \"git_rev\": \"$rev\","
    echo "  \"benches\": ["
    sed -e 's/^/    /' -e '$!s/$/,/' "$raw"
    echo '  ]'
    echo '}'
} > "$out"

echo "bench_snapshot: wrote $(grep -c '"bench"' "$out") medians to $out" >&2
